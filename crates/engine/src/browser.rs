//! The browser simulation: event loop, main-thread executor, VSync
//! batching, animation ticking, and frame production.
//!
//! One simulated CPU executes main-thread work (callbacks and pipeline
//! stages) in FIFO order; a [`Scheduler`] picks the ACMP configuration at
//! the paper's decision points. Time is discrete-event: the loop pops the
//! earliest of {input arrival, VSync, task completion, timer, governor
//! tick} and reacts. Configuration switches mid-task re-scale the task's
//! remaining work and charge the platform's switch penalty.

use crate::app::App;
use crate::cost::{FrameCostModel, Stage};
use crate::effects::HandlerSummary;
use crate::events::{InputId, TargetSpec, Trace, TraceEvent};
use crate::fault::{FaultInjector, FaultPlan, VsyncDisposition};
use crate::frame::{FrameTracker, Msg};
use crate::host::{CallbackEffects, ScriptHost};
use crate::layout::{
    DisplayItem, FrameRenderInfo, LayoutBox, LayoutStats, PaintStats, RenderPipeline,
};
use crate::report::{InputRecord, SimReport};
use crate::runspec::RunBudget;
use crate::scheduler::{Scheduler, SchedulerCtx};
use crate::style_cache::StyleCache;
use greenweb_acmp::{Cpu, CpuConfig, Duration, Platform, PowerModel, SimTime, WorkUnit};
use greenweb_css::animation::{AnimationSpec, AnimationState};
use greenweb_css::stylesheet::parse_stylesheet;
use greenweb_css::transition::{TransitionSpec, TransitionState};
use greenweb_css::value::{CssValue, Length};
use greenweb_css::{ComputedStyle, StyleEngine, StyleStats};
use greenweb_dom::{parse_html, Document, Event, EventType, ListenerSet, NodeId};
use greenweb_script::{
    compile, parse_program, CompiledProgram, HandlerCache, Interpreter, ScriptError, ScriptStats,
    Value, Vm,
};
use greenweb_trace::{record_into, EventKind as TraceKind, SpanKind, TraceHandle};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// The VSync period: 60 Hz, like the paper's mobile display.
pub const VSYNC_PERIOD: Duration = Duration::from_nanos(16_666_667);

/// Reads `GREENWEB_EFFECT_GATE`: `off`, `0`, or `false` (any case)
/// disables summary-gated invalidation downgrades, anything else —
/// including unset — enables them. Mirrors `GREENWEB_STYLE_CACHE`; the
/// effect-gate parity gate in CI runs one workload each way and diffs
/// the metrics after stripping the style counters.
fn effect_gate_from_env() -> bool {
    !matches!(
        std::env::var("GREENWEB_EFFECT_GATE")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str(),
        "off" | "0" | "false"
    )
}

/// Reads `GREENWEB_EFFECT_ASSERT`: `off`, `0`, or `false` (any case)
/// downgrades the `dynamic ⊆ static` containment debug assertion to
/// ledger-only recording. Poison harnesses — which attach deliberately
/// under-approximated summaries to prove the detector detects — use it
/// to observe violations in the report instead of aborting debug builds.
fn effect_assert_from_env() -> bool {
    !matches!(
        std::env::var("GREENWEB_EFFECT_ASSERT")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str(),
        "off" | "0" | "false"
    )
}

/// Which script backend a browser executes callbacks on.
///
/// The default ([`ScriptBackend::Auto`]) is the bytecode VM: every setup
/// program and handler body is compiled once at app load and every event
/// dispatch executes that artifact — the same one the analyzers walk.
/// The tree-walking interpreter survives as a differential oracle: its
/// per-op tick counts define the cost model, and the VM's tick-weighted
/// charging reproduces them exactly, so the two backends yield
/// byte-identical metrics (CI diffs them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ScriptBackend {
    /// Resolve from `GREENWEB_SCRIPT_VM`: `off`, `0`, or `false` (any
    /// case) selects the tree-walking oracle; anything else — including
    /// unset — selects the VM.
    #[default]
    Auto,
    /// The bytecode VM (the production path).
    Vm,
    /// The tree-walking interpreter (the oracle path).
    Tree,
}

/// Reads `GREENWEB_SCRIPT_VM` for [`ScriptBackend::Auto`]. Mirrors
/// `GREENWEB_STYLE_CACHE` / `GREENWEB_EFFECT_GATE`: opt-out, not opt-in.
fn script_vm_from_env() -> bool {
    !matches!(
        std::env::var("GREENWEB_SCRIPT_VM")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str(),
        "off" | "0" | "false"
    )
}

/// The script execution backend behind one browser: either the bytecode
/// VM or the tree-walking oracle, behind one call surface so the event
/// loop never branches on the backend.
enum ScriptEngine {
    Vm(Vm),
    Tree(Interpreter),
}

impl ScriptEngine {
    fn for_backend(backend: ScriptBackend) -> Self {
        let use_vm = match backend {
            ScriptBackend::Auto => script_vm_from_env(),
            ScriptBackend::Vm => true,
            ScriptBackend::Tree => false,
        };
        if use_vm {
            ScriptEngine::Vm(Vm::new())
        } else {
            ScriptEngine::Tree(Interpreter::new())
        }
    }

    fn call_function(
        &mut self,
        callee: &Value,
        args: &[Value],
        host: &mut ScriptHost<'_>,
    ) -> Result<Value, ScriptError> {
        match self {
            ScriptEngine::Vm(vm) => vm.call_function(callee, args, host),
            ScriptEngine::Tree(interp) => interp.call_function(callee, args, host),
        }
    }

    /// Charged evaluation steps since the last reset — backend-independent
    /// by the tick-parity contract (the VM's per-instruction weights sum
    /// to exactly the tree-walker's op count).
    fn ops(&self) -> u64 {
        match self {
            ScriptEngine::Vm(vm) => vm.ops(),
            ScriptEngine::Tree(interp) => interp.ops(),
        }
    }

    /// Raw VM instructions since the last reset (zero on the oracle).
    fn dispatches(&self) -> u64 {
        match self {
            ScriptEngine::Vm(vm) => vm.dispatches(),
            ScriptEngine::Tree(_) => 0,
        }
    }

    fn reset_ops(&mut self) {
        match self {
            ScriptEngine::Vm(vm) => vm.reset_ops(),
            ScriptEngine::Tree(interp) => interp.reset_ops(),
        }
    }

    fn set_op_limit(&mut self, limit: u64) {
        match self {
            ScriptEngine::Vm(vm) => vm.set_op_limit(limit),
            ScriptEngine::Tree(interp) => interp.set_op_limit(limit),
        }
    }
}

/// Maps an engine pipeline stage to its trace span kind.
fn stage_span(stage: Stage) -> SpanKind {
    match stage {
        Stage::Style => SpanKind::Style,
        Stage::Layout => SpanKind::Layout,
        Stage::Paint => SpanKind::Paint,
        Stage::Composite => SpanKind::Composite,
    }
}

/// Error constructing or running a [`Browser`].
#[derive(Debug)]
pub enum BrowserError {
    /// HTML failed to parse.
    Html(greenweb_dom::HtmlError),
    /// CSS failed to parse.
    Css(greenweb_css::CssError),
    /// A script failed to parse.
    Parse(greenweb_script::ParseError),
    /// A script failed at runtime.
    Script(greenweb_script::ScriptError),
    /// A watchdog ceiling ([`crate::RunBudget`]) tripped: the run was a
    /// runaway (infinite loop, timer bomb), not a program bug. Counted
    /// in deterministic simulation quantities, so the same spec trips
    /// at the same point on every machine.
    Budget(String),
}

impl fmt::Display for BrowserError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrowserError::Html(e) => write!(f, "{e}"),
            BrowserError::Css(e) => write!(f, "{e}"),
            BrowserError::Parse(e) => write!(f, "{e}"),
            BrowserError::Script(e) => write!(f, "{e}"),
            BrowserError::Budget(detail) => write!(f, "watchdog budget exceeded: {detail}"),
        }
    }
}

impl std::error::Error for BrowserError {}

impl From<greenweb_dom::HtmlError> for BrowserError {
    fn from(e: greenweb_dom::HtmlError) -> Self {
        BrowserError::Html(e)
    }
}

impl From<greenweb_css::CssError> for BrowserError {
    fn from(e: greenweb_css::CssError) -> Self {
        BrowserError::Css(e)
    }
}

impl From<greenweb_script::ParseError> for BrowserError {
    fn from(e: greenweb_script::ParseError) -> Self {
        BrowserError::Parse(e)
    }
}

impl From<greenweb_script::ScriptError> for BrowserError {
    fn from(e: greenweb_script::ScriptError) -> Self {
        // Fuel exhaustion is the script-side arm of the watchdog: it is
        // a budget outcome, not a script bug, wherever it surfaces.
        if e.is_op_limit() {
            BrowserError::Budget(e.to_string())
        } else {
            BrowserError::Script(e)
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum SimEventKind {
    Input(TraceEvent),
    VSync,
    TaskDone { gen: u64 },
    Timer { id: u64 },
    GovTick,
}

#[derive(Debug, Clone, PartialEq)]
struct QueuedEvent {
    at: SimTime,
    seq: u64,
    kind: SimEventKind,
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug)]
enum Task {
    Callback {
        callback: Value,
        arg: Option<Value>,
        origin: Msg,
        /// The static effect summary for this registration, if the
        /// analyzer produced one (`None` for timer/rAF continuations and
        /// runtime-registered listeners — they are simply unchecked).
        summary: Option<Rc<HandlerSummary>>,
    },
    BeginFrame,
    Stage {
        stage: Stage,
        msgs: Rc<Vec<Msg>>,
        seq: u32,
    },
}

#[derive(Debug)]
enum RunningKind {
    Callback {
        effects: Box<CallbackEffects>,
        origin: Msg,
        /// VM opcodes the callback executed — captured at dispatch so
        /// the traced span can carry the script-work breadcrumb the
        /// attribution profiler ranks callbacks by.
        ops: u64,
        /// The static effect summary to check the observed effects
        /// against when the task completes.
        summary: Option<Rc<HandlerSummary>>,
    },
    Stage {
        stage: Stage,
        msgs: Rc<Vec<Msg>>,
    },
}

#[derive(Debug)]
struct Running {
    kind: RunningKind,
    remaining: WorkUnit,
    since: SimTime,
    /// When the task first started executing. Unlike `since` (which
    /// resets on every mid-task configuration switch), this survives
    /// switches, so the traced span covers the task's full extent.
    started: SimTime,
    gen: u64,
}

#[derive(Debug)]
struct ActiveTransition {
    node: NodeId,
    state: TransitionState,
    origin: InputId,
}

#[derive(Debug)]
struct ActiveCssAnimation {
    node: NodeId,
    state: AnimationState,
    origin: InputId,
}

#[derive(Debug)]
struct ActiveHostAnimation {
    node: NodeId,
    property: String,
    from_px: f64,
    to_px: f64,
    start_ms: f64,
    duration_ms: f64,
    origin: InputId,
}

/// The simulated browser, generic over the scheduling policy.
pub struct Browser<S: Scheduler> {
    app_name: String,
    doc: Document,
    style: StyleEngine,
    /// Computed-style cache; `RefCell` so read-only accessors
    /// ([`Browser::computed_style`]) stay `&self` while memoizing.
    style_cache: RefCell<StyleCache>,
    /// The script backend: the bytecode VM by default, the tree-walking
    /// oracle under `GREENWEB_SCRIPT_VM=off` (or [`ScriptBackend::Tree`]).
    script: ScriptEngine,
    /// The handler-compilation cache shared with every analysis consumer
    /// (GreenLint's cost/effect passes, the attribution profiler): one
    /// compiled artifact per callback body, aliased zero-copy on the VM
    /// path. Exposed via [`Browser::handler_cache`].
    handler_cache: HandlerCache,
    /// Script-pipeline counters accumulated across setup and callbacks;
    /// snapshot (plus cache-derived fields) lands in the report.
    script_stats: ScriptStats,
    listeners: ListenerSet<Value>,
    /// Incremental rendering pipeline: subtree fingerprints, measure
    /// cache, retained display list, damage diff (`GREENWEB_PAINT_INCR`;
    /// the oracle mode recomputes everything but prices identically).
    render: RenderPipeline,
    /// Pricing inputs of the frame currently in the pipeline, computed
    /// once per frame by [`Browser::run_render_pass`] — the stages of
    /// one frame run back-to-back (pushed to the front of the ready
    /// queue together), so no other render pass can intervene.
    frame_render: FrameRenderInfo,
    cost: FrameCostModel,
    cpu: Cpu,
    scheduler: S,
    now: SimTime,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    running: Option<Running>,
    ready: VecDeque<Task>,
    gen: u64,
    tracker: FrameTracker,
    raf_queue: Vec<(Value, InputId)>,
    timers: HashMap<u64, (Value, InputId)>,
    next_timer: u64,
    transitions: Vec<ActiveTransition>,
    css_animations: Vec<ActiveCssAnimation>,
    host_animations: Vec<ActiveHostAnimation>,
    overlay: HashMap<(NodeId, String), CssValue>,
    input_meta: Vec<InputRecord>,
    /// Scroll/touchmove inputs waiting for VSync-aligned dispatch
    /// (Chromium aligns move-type input delivery to BeginFrame).
    pending_moves: Vec<TraceEvent>,
    next_uid: u64,
    util_mark: Duration,
    logs: Vec<String>,
    injector: Option<FaultInjector>,
    trace: Option<TraceHandle>,
    /// Watchdog ceilings, when this browser runs supervised.
    budget: Option<RunBudget>,
    /// Discrete events popped by [`Browser::run`] so far (across runs),
    /// checked against `budget.max_sim_events`.
    events_popped: u64,
    /// Static effect summaries keyed the way dispatch finds callbacks:
    /// `(registered node, event, index within that node's listener
    /// list)`. Built from [`App::effect_summaries`] at load.
    effect_summaries: HashMap<(NodeId, EventType, usize), Rc<HandlerSummary>>,
    /// Whether summary-gated invalidation downgrades are enabled
    /// (`GREENWEB_EFFECT_GATE`; containment *checks* run regardless).
    effect_gate: bool,
    /// Whether a containment violation trips a debug assertion. Poison
    /// harnesses disable this to observe violations deterministically.
    effect_assertions: bool,
    /// Set after any containment violation: summaries are no longer
    /// trusted for invalidation downgrades in this browser.
    summaries_distrusted: bool,
    /// Every `dynamic ⊆ static` violation observed, in occurrence order.
    effect_violations: Vec<String>,
    /// Number of callback returns checked against a static summary.
    effect_checks: u64,
}

impl<S: Scheduler> Browser<S> {
    /// Loads `app` and attaches `scheduler`, using the default ODroid
    /// XU+E platform and power model.
    ///
    /// # Errors
    ///
    /// Returns [`BrowserError`] if any of the app's sources fail to parse
    /// or a setup script fails.
    pub fn new(app: &App, scheduler: S) -> Result<Self, BrowserError> {
        Self::with_hardware(
            app,
            scheduler,
            Platform::odroid_xu_e(),
            PowerModel::odroid_xu_e(),
        )
    }

    /// Loads `app` on default hardware with an explicit script backend.
    /// Tests use this instead of `GREENWEB_SCRIPT_VM`, which races under
    /// parallel test execution.
    ///
    /// # Errors
    ///
    /// Same as [`Browser::new`].
    pub fn with_backend(
        app: &App,
        scheduler: S,
        backend: ScriptBackend,
    ) -> Result<Self, BrowserError> {
        Self::with_hardware_backend(
            app,
            scheduler,
            Platform::odroid_xu_e(),
            PowerModel::odroid_xu_e(),
            backend,
        )
    }

    /// Loads `app` on custom hardware.
    ///
    /// # Errors
    ///
    /// Same as [`Browser::new`].
    pub fn with_hardware(
        app: &App,
        scheduler: S,
        platform: Platform,
        power: PowerModel,
    ) -> Result<Self, BrowserError> {
        Self::with_hardware_backend(app, scheduler, platform, power, ScriptBackend::Auto)
    }

    /// Loads `app` on custom hardware with an explicit script backend.
    ///
    /// # Errors
    ///
    /// Same as [`Browser::new`].
    pub fn with_hardware_backend(
        app: &App,
        mut scheduler: S,
        platform: Platform,
        power: PowerModel,
        backend: ScriptBackend,
    ) -> Result<Self, BrowserError> {
        let doc = parse_html(&app.html)?;
        let stylesheet = parse_stylesheet(&app.css_source())?;
        scheduler.on_attach(&stylesheet, &doc);
        let style = StyleEngine::new(stylesheet);
        let cpu = Cpu::new(platform, power);
        let mut browser = Browser {
            app_name: app.name.clone(),
            doc,
            style,
            style_cache: RefCell::new(StyleCache::from_env()),
            script: ScriptEngine::for_backend(backend),
            handler_cache: HandlerCache::default(),
            script_stats: ScriptStats::default(),
            listeners: ListenerSet::new(),
            render: RenderPipeline::from_env(),
            frame_render: FrameRenderInfo::default(),
            cost: app.cost.clone(),
            cpu,
            scheduler,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            running: None,
            ready: VecDeque::new(),
            gen: 0,
            tracker: FrameTracker::new(),
            raf_queue: Vec::new(),
            timers: HashMap::new(),
            next_timer: 0,
            transitions: Vec::new(),
            css_animations: Vec::new(),
            host_animations: Vec::new(),
            overlay: HashMap::new(),
            input_meta: Vec::new(),
            pending_moves: Vec::new(),
            next_uid: 0,
            util_mark: Duration::ZERO,
            logs: Vec::new(),
            injector: None,
            trace: None,
            budget: None,
            events_popped: 0,
            effect_summaries: HashMap::new(),
            effect_gate: effect_gate_from_env(),
            effect_assertions: effect_assert_from_env(),
            summaries_distrusted: false,
            effect_violations: Vec::new(),
            effect_checks: 0,
        };
        browser.set_effect_summaries(&app.effect_summaries);
        // Run setup scripts: they register listeners and may set initial
        // styles. Scheduling effects (dirty/rAF/timers) are ignored at
        // setup — loading work is modeled by the `load` trace event. On
        // the VM path each program executes the bytecode compiled once at
        // `App::build` (fingerprint-validated; recompiled here only if
        // the sources were mutated after build). The functions it defines
        // close over that same prototype table, so every later event
        // dispatch — and every analysis pass — reuses this one artifact.
        for (index, src) in app.scripts.iter().enumerate() {
            browser.script_stats.programs += 1;
            let mut host = ScriptHost::new(&mut browser.doc, 0.0);
            match &mut browser.script {
                ScriptEngine::Vm(vm) => {
                    let compiled: CompiledProgram = match app.compiled_script(index) {
                        Some(compiled) => {
                            browser.script_stats.precompiled_hits += 1;
                            compiled.clone() // an `Arc` alias, not a copy
                        }
                        None => {
                            browser.script_stats.compiles += 1;
                            let program = parse_program(src)?;
                            compile(&program)
                                .map_err(|e| ScriptError::new(e.to_string()))
                                .map_err(BrowserError::Script)?
                        }
                    };
                    browser.script_stats.fold_wins += compiled
                        .protos
                        .iter()
                        .map(|p| u64::from(p.folded))
                        .sum::<u64>();
                    vm.run(&compiled, &mut host)?;
                }
                ScriptEngine::Tree(interp) => {
                    let program = parse_program(src)?;
                    interp.run(&program, &mut host)?;
                }
            }
            for (node, event, callback) in host.effects.listeners.drain(..) {
                browser.listeners.add(node, event, callback);
            }
        }
        browser.script_stats.ops += browser.script.ops();
        browser.script_stats.dispatches += browser.script.dispatches();
        browser.script.reset_ops();
        // Warm the shared handler cache with every registered callback.
        // On the VM path this is a zero-copy alias of the bytecode the
        // closures already hold; on the oracle path it performs the AST
        // recompiles the cache counts as compile-twice debt.
        for (node, event) in browser.listener_targets() {
            for callback in browser.listeners.get(node, event) {
                browser.handler_cache.compile_callback(callback);
            }
        }
        Ok(browser)
    }

    /// Loads `app` with a fault-injection plan attached (default
    /// hardware). See [`Browser::set_fault_plan`].
    ///
    /// # Errors
    ///
    /// Same as [`Browser::new`].
    pub fn with_faults(app: &App, scheduler: S, plan: FaultPlan) -> Result<Self, BrowserError> {
        let mut browser = Self::new(app, scheduler)?;
        browser.set_fault_plan(plan);
        Ok(browser)
    }

    /// Attaches a seeded fault-injection plan. The next [`Browser::run`]
    /// perturbs input delivery, VSync timing, callback cost, and the
    /// power sensor per the plan; every fault that fires is recorded in
    /// the report's [`crate::ChaosReport`]. Runs with the same plan (and
    /// same app/trace/scheduler) are byte-for-byte reproducible.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Attaches a watchdog budget. The script backend's per-callback fuel
    /// ceiling takes effect immediately (both backends meter through the
    /// one shared [`greenweb_script::Fuel`] type, so the ceiling means
    /// the same thing either way); the sim-event ceiling is enforced by
    /// the next [`Browser::run`]. See [`RunBudget`] for why both ceilings
    /// are deterministic.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.script.set_op_limit(budget.max_callback_ops);
        self.budget = Some(budget);
    }

    /// Attaches a trace recorder. The browser emits pipeline-stage
    /// spans, VSync ticks, configuration switches, energy samples, frame
    /// commits, and injected faults into it; the handle is also passed
    /// to the scheduler (via [`Scheduler::attach_trace`]) so policies
    /// can add their decision and degradation events to the same
    /// timeline. Without a recorder attached, all instrumentation sites
    /// are branches on a `None` — no payloads are built, nothing
    /// allocates.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.scheduler.attach_trace(trace.clone());
        self.trace = Some(trace);
    }

    /// The live document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The style engine (stylesheet + resolver).
    pub fn style_engine(&self) -> &StyleEngine {
        &self.style
    }

    /// Enables or disables the computed-style cache for this browser.
    /// Tests use this instead of `GREENWEB_STYLE_CACHE`, which races
    /// under parallel test execution. Caching is semantics-preserving;
    /// only the `style.cache_*` counters differ between modes.
    pub fn set_style_cache_enabled(&mut self, enabled: bool) {
        self.style_cache.get_mut().set_enabled(enabled);
    }

    /// Switches the rendering pipeline between the incremental path and
    /// the naive full-relayout/full-repaint oracle. Tests use this
    /// instead of `GREENWEB_PAINT_INCR`, which races under parallel
    /// test execution. Semantics-preserving: geometry, display lists,
    /// and every energy/QoS metric are identical between modes — only
    /// the `layout`/`paint` reuse counters (and the style counters,
    /// since reused subtrees skip style resolution) differ.
    pub fn set_paint_incremental(&mut self, enabled: bool) {
        self.render.set_enabled(enabled);
    }

    /// The retained display list after the last produced frame, in
    /// document order. Differential tests compare this across modes.
    pub fn display_list(&self) -> &[DisplayItem] {
        self.render.display_list()
    }

    /// The positioned layout boxes of the last produced frame.
    pub fn layout_boxes(&self) -> &[LayoutBox] {
        self.render.layout_boxes()
    }

    /// Layout counters accumulated so far.
    pub fn layout_stats(&self) -> LayoutStats {
        self.render.layout_stats()
    }

    /// Paint counters accumulated so far.
    pub fn paint_stats(&self) -> PaintStats {
        self.render.paint_stats()
    }

    /// Replaces the static effect-summary table (normally injected via
    /// [`App::effect_summaries`]; tests use this to attach hand-built or
    /// intentionally wrong summaries after construction).
    pub fn set_effect_summaries(&mut self, summaries: &[HandlerSummary]) {
        self.effect_summaries = summaries
            .iter()
            .map(|hs| ((hs.node, hs.event, hs.index), Rc::new(hs.clone())))
            .collect();
        self.summaries_distrusted = false;
    }

    /// The static summaries attached for the callbacks registered at
    /// `(node, event)`, in callback order. Empty when no summary table
    /// is attached or the target has none; shorter than the callback
    /// list when listeners were added dynamically after inference.
    pub fn effect_summaries_for(&self, node: NodeId, event: EventType) -> Vec<&HandlerSummary> {
        let mut out = Vec::new();
        for index in 0.. {
            match self.effect_summaries.get(&(node, event, index)) {
                Some(hs) => out.push(hs.as_ref()),
                None => break,
            }
        }
        out
    }

    /// Enables or disables summary-gated invalidation downgrades
    /// programmatically (tests use this instead of
    /// `GREENWEB_EFFECT_GATE`, which races under parallel execution).
    /// Containment checks run either way.
    pub fn set_effect_gate_enabled(&mut self, enabled: bool) {
        self.effect_gate = enabled;
    }

    /// Disables the debug assertion on containment violations, so poison
    /// harnesses (which attach deliberately under-approximated summaries)
    /// can observe violations in the report instead of aborting.
    pub fn set_effect_containment_asserts(&mut self, enabled: bool) {
        self.effect_assertions = enabled;
    }

    /// Every `dynamic ⊆ static` containment violation observed so far.
    pub fn effect_violations(&self) -> &[String] {
        &self.effect_violations
    }

    /// Number of callback returns checked against a static summary.
    pub fn effect_checks(&self) -> u64 {
        self.effect_checks
    }

    /// The handler-compilation cache: one compiled artifact per callback
    /// body. Analysis consumers (GreenLint's cost/effect passes, the
    /// attribution profiler) compile through this cache so they certify
    /// byte-for-byte the bytecode this browser executes.
    pub fn handler_cache(&self) -> &HandlerCache {
        &self.handler_cache
    }

    /// Script-pipeline counters so far: accumulated program/callback
    /// counts plus the handler cache's current compile/recompile totals.
    pub fn script_stats(&self) -> ScriptStats {
        let mut stats = self.script_stats;
        stats.handlers = self.handler_cache.handlers();
        stats.handler_recompiles = self.handler_cache.recompiles();
        // `compiles` totals everything that invoked the bytecode
        // compiler: load-time compiles plus handler recompiles (zero on
        // the VM path, where handlers alias their load-time bytecode).
        stats.compiles += stats.handler_recompiles;
        stats
    }

    /// Combined style-system counters: the engine's resolver stats plus
    /// this browser's cache hits/misses.
    pub fn style_stats(&self) -> StyleStats {
        let cache = self.style_cache.borrow();
        let (cache_hits, cache_misses) = cache.counters();
        self.style.stats().merge(&StyleStats {
            cache_hits,
            cache_misses,
            cache_invalidations_avoided: cache.invalidations_avoided(),
            ..StyleStats::default()
        })
    }

    /// Every `(node, event)` pair with a registered listener — what
    /// AUTOGREEN's DOM-discovery phase enumerates.
    pub fn listener_targets(&self) -> Vec<(NodeId, EventType)> {
        let mut targets: Vec<_> = self.listeners.targets().collect();
        targets.sort();
        targets
    }

    /// The callbacks registered for `event` directly on `node`, in
    /// registration order — what the static analyzer's cost-bound pass
    /// compiles and walks.
    pub fn listener_callbacks(&self, node: NodeId, event: EventType) -> &[Value] {
        self.listeners.get(node, event)
    }

    /// The current animated value of `property` on `node`, if an
    /// animation overlay is active.
    pub fn animated_value(&self, node: NodeId, property: &str) -> Option<&CssValue> {
        self.overlay.get(&(node, property.to_string()))
    }

    /// Collected `log()` output.
    pub fn logs(&self) -> &[String] {
        &self.logs
    }

    /// The attached scheduler. Chaos harnesses use this after a run to
    /// read runtime state the report does not carry (e.g. a
    /// degradation log).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Mutable access to the attached scheduler (e.g. to tune watchdog
    /// thresholds before a run).
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.scheduler
    }

    fn push_event(&mut self, at: SimTime, kind: SimEventKind) {
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            at,
            seq: self.seq,
            kind,
        }));
    }

    fn next_gen(&mut self) -> u64 {
        self.gen += 1;
        self.gen
    }

    /// Runs the trace to completion and produces the report.
    ///
    /// A browser accumulates state across runs; evaluation code should
    /// construct a fresh browser per measured run.
    ///
    /// # Errors
    ///
    /// Returns [`BrowserError::Script`] if a callback raises an error.
    pub fn run(&mut self, trace: &Trace) -> Result<SimReport, BrowserError> {
        let events = match self.injector.as_mut() {
            Some(injector) => injector.perturb_inputs(&trace.events),
            None => trace.events.clone(),
        };
        for event in events {
            self.push_event(event.at, SimEventKind::Input(event));
        }
        self.push_event(SimTime::ZERO + VSYNC_PERIOD, SimEventKind::VSync);
        if let Some(period) = self.scheduler.timer_period() {
            self.push_event(SimTime::ZERO + period, SimEventKind::GovTick);
        }
        let end = trace.end;
        while let Some(Reverse(event)) = self.queue.pop() {
            if event.at > end {
                break;
            }
            self.events_popped += 1;
            if let Some(budget) = self.budget {
                if self.events_popped > budget.max_sim_events {
                    return Err(BrowserError::Budget(format!(
                        "sim-event ceiling exceeded: popped more than {} events \
                         by t={:?} (trace ends at {:?})",
                        budget.max_sim_events, event.at, end
                    )));
                }
            }
            debug_assert!(event.at >= self.now, "event queue went backwards");
            self.now = event.at;
            match event.kind {
                // Move-type inputs are VSync-aligned: the browser
                // coalesces them into the next frame rather than waking
                // the main thread mid-frame (Chromium's input pipeline).
                SimEventKind::Input(input)
                    if matches!(input.event, EventType::Scroll | EventType::TouchMove) =>
                {
                    self.pending_moves.push(input);
                }
                SimEventKind::Input(input) => self.on_input(input)?,
                SimEventKind::VSync => self.on_vsync(end)?,
                SimEventKind::TaskDone { gen } => self.on_task_done(gen)?,
                SimEventKind::Timer { id } => self.on_timer_fired(id)?,
                SimEventKind::GovTick => self.on_gov_tick(end),
            }
        }
        self.now = end;
        self.cpu.advance(end);
        Ok(self.build_report(end))
    }

    fn build_report(&mut self, end: SimTime) -> SimReport {
        // Injected faults are appended to the trace in one deterministic
        // batch at report time (the exporter's consumers sort by
        // timestamp, so insertion order does not matter).
        if let Some(trace) = self.trace.clone() {
            if let Some(injector) = self.injector.as_ref() {
                for fault in &injector.report().faults {
                    trace.record(
                        fault.at,
                        TraceKind::Fault {
                            category: fault.kind.category(),
                            detail: fault.kind.to_string(),
                        },
                    );
                }
            }
        }
        let style = self.style_stats();
        let layout = self.render.layout_stats();
        let paint = self.render.paint_stats();
        if let Some(trace) = self.trace.as_ref() {
            trace.record(
                end,
                TraceKind::RenderStats {
                    relayouts: layout.relayouts,
                    elements_laid_out: layout.elements_laid_out,
                    subtree_reuses: layout.subtree_reuses,
                    dirty_elements: layout.dirty_elements,
                    full_repaints: paint.full_repaints,
                    partial_repaints: paint.partial_repaints,
                    items_emitted: paint.items_emitted,
                    items_reused: paint.items_reused,
                    damage_items: paint.damage_items,
                    damage_area: paint.damage_area,
                },
            );
            trace.record(
                end,
                TraceKind::StyleStats {
                    resolves: style.resolves,
                    matches: style.matches,
                    matches_id: style.matches_id,
                    matches_class: style.matches_class,
                    matches_tag: style.matches_tag,
                    matches_universal: style.matches_universal,
                    bloom_rejects: style.bloom_rejects,
                    cache_hits: style.cache_hits,
                    cache_misses: style.cache_misses,
                    cache_invalidations_avoided: style.cache_invalidations_avoided,
                },
            );
        }
        let mut inputs = self.input_meta.clone();
        for input in &mut inputs {
            input.frames = self.tracker.frames_for(input.uid);
        }
        SimReport {
            app: self.app_name.clone(),
            scheduler: self.scheduler.name(),
            energy: self.cpu.energy(),
            frames: self.tracker.records().to_vec(),
            inputs,
            residency: self.cpu.residency().clone(),
            switches: self.cpu.switch_counts(),
            busy_time: self.cpu.busy_time(),
            total_time: end.since(SimTime::ZERO),
            chaos: self.injector.as_ref().map(FaultInjector::report),
            style,
            script: self.script_stats(),
            layout,
            paint,
            effect_checks: self.effect_checks,
            effect_violations: self.effect_violations.clone(),
        }
    }

    fn resolve_target(&self, spec: &TargetSpec) -> NodeId {
        match spec {
            TargetSpec::Id(id) => self
                .doc
                .element_by_id(id)
                .unwrap_or_else(|| self.doc.root()),
            // Root events (load, page scroll) target the document
            // element, like real browsers; listeners registered on the
            // document root still fire via the propagation path.
            TargetSpec::Root => {
                let root = self.doc.root();
                self.doc
                    .children(root)
                    .find(|&c| self.doc.element(c).is_some())
                    .unwrap_or(root)
            }
        }
    }

    fn on_input(&mut self, input: TraceEvent) -> Result<(), BrowserError> {
        let uid = InputId(self.next_uid);
        self.next_uid += 1;
        let target = self.resolve_target(&input.target);
        self.tracker.register_input(uid, input.event);
        self.cpu.advance(self.now);
        let desired = {
            let ctx = SchedulerCtx {
                doc: &self.doc,
                cpu: &self.cpu,
            };
            self.scheduler
                .on_input(self.now, uid, input.event, target, &ctx)
        };
        self.apply_config(desired);
        let event = Event::new(input.event, target);
        let callbacks: Vec<(Option<Rc<HandlerSummary>>, Value)> = self
            .listeners
            .dispatch_entries(&self.doc, &event)
            .into_iter()
            .map(|(node, index, callback)| {
                let summary = self
                    .effect_summaries
                    .get(&(node, input.event, index))
                    .cloned();
                (summary, callback.clone())
            })
            .collect();
        let had_listener = !callbacks.is_empty();
        self.input_meta.push(InputRecord {
            uid,
            event: input.event,
            target_id: self
                .doc
                .element(target)
                .and_then(|el| el.id())
                .map(str::to_string),
            at: self.now,
            had_listener,
            used_raf: false,
            used_animate: false,
            armed_css_animation: false,
            frames: 0,
        });
        record_into(&self.trace, self.now, || TraceKind::Span {
            kind: SpanKind::Input,
            start: self.now,
            dur: Duration::ZERO,
            uids: vec![uid.0],
            label: Some(input.event.name()),
            ops: 0,
        });
        let origin = Msg {
            uid,
            start_ts: self.now,
        };
        if had_listener {
            let arg = self.event_arg(input.event, target);
            for (summary, callback) in callbacks {
                self.ready.push_back(Task::Callback {
                    callback,
                    arg: Some(arg.clone()),
                    origin,
                    summary,
                });
            }
        } else if matches!(input.event, EventType::Scroll | EventType::TouchMove) {
            // Compositor-driven scrolling: a frame without script.
            self.tracker.mark_dirty(origin);
        }
        self.try_start()?;
        Ok(())
    }

    /// Registers a move input that was coalesced into a later one: it
    /// runs no callback of its own but is attributed the shared frame.
    fn register_coalesced_move(&mut self, input: &TraceEvent) {
        let uid = InputId(self.next_uid);
        self.next_uid += 1;
        let target = self.resolve_target(&input.target);
        self.tracker.register_input(uid, input.event);
        self.input_meta.push(InputRecord {
            uid,
            event: input.event,
            target_id: self
                .doc
                .element(target)
                .and_then(|el| el.id())
                .map(str::to_string),
            at: self.now,
            had_listener: self.listeners.has(target, input.event),
            used_raf: false,
            used_animate: false,
            armed_css_animation: false,
            frames: 0,
        });
        self.tracker.mark_dirty(Msg {
            uid,
            start_ts: self.now,
        });
        record_into(&self.trace, self.now, || TraceKind::Span {
            kind: SpanKind::Input,
            start: self.now,
            dur: Duration::ZERO,
            uids: vec![uid.0],
            label: Some(input.event.name()),
            ops: 0,
        });
    }

    fn event_arg(&self, event: EventType, target: NodeId) -> Value {
        let obj = Value::object();
        if let Value::Object(map) = &obj {
            let mut map = map.borrow_mut();
            map.insert("type".into(), Value::str(event.name()));
            map.insert("target".into(), Value::Number(target.index() as f64));
        }
        obj
    }

    fn on_vsync(&mut self, end: SimTime) -> Result<(), BrowserError> {
        if let Some(injector) = self.injector.as_mut() {
            // The power sensor is sampled at display rate (~60 Hz): apply
            // this interval's (possibly distorted) gain before any other
            // work charges energy.
            let gain = injector.sensor_gain(self.now);
            self.cpu.set_sensor_gain(self.now, gain);
            match injector.on_vsync(self.now) {
                VsyncDisposition::Deliver => {}
                VsyncDisposition::Drop => {
                    // The display swallowed the tick: no input delivery,
                    // no rAF, no frame — but the clock keeps beating.
                    let next = self.now + VSYNC_PERIOD;
                    if next <= end {
                        self.push_event(next, SimEventKind::VSync);
                    }
                    return Ok(());
                }
                VsyncDisposition::Defer(delay) => {
                    // The tick arrives late; its work (and the schedule of
                    // the following tick) shifts with it.
                    self.push_event(self.now + delay, SimEventKind::VSync);
                    return Ok(());
                }
            }
        }
        // Only delivered ticks are traced: the display actually beat. The
        // energy sample rides the same tick, giving Perfetto counter
        // tracks at display rate.
        if let Some(trace) = self.trace.clone() {
            self.cpu.advance(self.now);
            let sample = self.cpu.power_sample();
            trace.record(self.now, TraceKind::Vsync);
            trace.record(
                self.now,
                TraceKind::EnergySample {
                    actual_mj: sample.energy.total_mj(),
                    metered_mj: sample.metered.total_mj(),
                    power_mw: sample.power_mw,
                    config: sample.config,
                    busy: sample.busy,
                },
            );
        }
        // If the main thread is still chewing on the previous frame, skip
        // this VSync entirely — real browsers do not dispatch rAF or
        // begin a frame under main-thread congestion; the animation
        // simply drops to the next achievable frame rate. Dispatching
        // here anyway would anchor latencies one VSync early and charge
        // the runtime for queueing delay it cannot control.
        let congested = self.running.is_some() || !self.ready.is_empty();
        if !congested {
            // Deliver the move-type inputs first (input handlers run
            // ahead of rAF within a frame). Like Chromium, moves that
            // queued up behind a slow frame are *coalesced*: one callback
            // fires per (event, target) with the latest sample, while
            // every absorbed input still gets a latency record for the
            // shared frame (they are all "answered" by it).
            let moves: Vec<TraceEvent> = self.pending_moves.drain(..).collect();
            let moved = !moves.is_empty();
            for (i, input) in moves.iter().enumerate() {
                let is_last_of_kind = !moves[i + 1..]
                    .iter()
                    .any(|m| m.event == input.event && m.target == input.target);
                if is_last_of_kind {
                    self.on_input(input.clone())?;
                } else {
                    self.register_coalesced_move(input);
                }
            }
            // A continuation frame's work begins with its rAF callbacks
            // at this VSync — give the scheduler its per-frame decision
            // point *before* the callbacks run, so the whole frame
            // (callback + pipeline stages) executes at one configuration
            // (the paper's runtime operates per-frame, Sec. 6.1).
            let mut upcoming: Vec<InputId> = self
                .raf_queue
                .iter()
                .map(|(_, uid)| *uid)
                .chain(self.transitions.iter().map(|t| t.origin))
                .chain(self.css_animations.iter().map(|a| a.origin))
                .chain(self.host_animations.iter().map(|a| a.origin))
                .collect();
            upcoming.sort();
            upcoming.dedup();
            if !upcoming.is_empty() {
                let origins: Vec<(InputId, EventType)> = upcoming
                    .into_iter()
                    .map(|uid| (uid, self.origin_event(uid)))
                    .collect();
                self.cpu.advance(self.now);
                let desired = {
                    let ctx = SchedulerCtx {
                        doc: &self.doc,
                        cpu: &self.cpu,
                    };
                    self.scheduler.on_frame_start(self.now, &origins, &ctx)
                };
                self.apply_config(desired);
            }
            self.tick_animations();
            let rafs: Vec<(Value, InputId)> = self.raf_queue.drain(..).collect();
            let ticked = !rafs.is_empty();
            for (callback, uid) in rafs {
                let origin = Msg {
                    uid,
                    start_ts: self.now,
                };
                self.ready.push_back(Task::Callback {
                    callback,
                    arg: Some(Value::Number(self.now.as_millis_f64())),
                    origin,
                    summary: None,
                });
            }
            if self.tracker.is_dirty() || ticked || moved {
                // The dirty bit for move callbacks is only set when their
                // simulated execution completes; BeginFrame sits behind
                // them in the FIFO queue, so the frame still commits
                // within this VSync's work batch.
                self.ready.push_back(Task::BeginFrame);
            }
        }
        let next = self.now + VSYNC_PERIOD;
        if next <= end {
            self.push_event(next, SimEventKind::VSync);
        }
        self.try_start()?;
        Ok(())
    }

    /// Samples every active animation at the current VSync, updates the
    /// overlay, marks the frame dirty on behalf of each animation's root
    /// input, and fires `transitionend`/`animationend` for finished ones.
    fn tick_animations(&mut self) {
        let now_ms = self.now.as_millis_f64();
        let mut end_events: Vec<(NodeId, EventType, InputId)> = Vec::new();
        let mut dirty_origins: Vec<InputId> = Vec::new();

        let mut transitions = std::mem::take(&mut self.transitions);
        transitions.retain_mut(|t| {
            let value = t.state.value_at(now_ms);
            self.overlay
                .insert((t.node, t.state.property.clone()), value);
            dirty_origins.push(t.origin);
            if t.state.is_finished(now_ms) {
                end_events.push((t.node, EventType::TransitionEnd, t.origin));
                false
            } else {
                true
            }
        });
        self.transitions = transitions;

        let mut animations = std::mem::take(&mut self.css_animations);
        animations.retain_mut(|a| {
            if let Some(keyframes) = self
                .style
                .stylesheet()
                .keyframes_by_name(&a.state.spec.name)
            {
                // Sample every property the keyframes animate.
                let mut properties: Vec<String> = keyframes
                    .frames
                    .iter()
                    .flat_map(|f| f.declarations.iter().map(|d| d.property.clone()))
                    .collect();
                properties.sort();
                properties.dedup();
                for property in properties {
                    if let Some(value) = a.state.sample(keyframes, &property, now_ms) {
                        self.overlay.insert((a.node, property), value);
                    }
                }
            }
            dirty_origins.push(a.origin);
            if a.state.is_finished(now_ms) {
                end_events.push((a.node, EventType::AnimationEnd, a.origin));
                false
            } else {
                true
            }
        });
        self.css_animations = animations;

        let mut host_anims = std::mem::take(&mut self.host_animations);
        host_anims.retain_mut(|a| {
            let t = if a.duration_ms <= 0.0 {
                1.0
            } else {
                ((now_ms - a.start_ms) / a.duration_ms).clamp(0.0, 1.0)
            };
            let px = a.from_px + (a.to_px - a.from_px) * t;
            self.overlay.insert(
                (a.node, a.property.clone()),
                CssValue::Length(Length::px(px)),
            );
            dirty_origins.push(a.origin);
            t < 1.0
        });
        self.host_animations = host_anims;

        for origin in dirty_origins {
            self.tracker.mark_dirty(Msg {
                uid: origin,
                start_ts: self.now,
            });
        }
        for (node, event_type, origin) in end_events {
            let event = Event::new(event_type, node);
            let callbacks: Vec<(Option<Rc<HandlerSummary>>, Value)> = self
                .listeners
                .dispatch_entries(&self.doc, &event)
                .into_iter()
                .map(|(listener_node, index, callback)| {
                    let summary = self
                        .effect_summaries
                        .get(&(listener_node, event_type, index))
                        .cloned();
                    (summary, callback.clone())
                })
                .collect();
            let arg = self.event_arg(event_type, node);
            for (summary, callback) in callbacks {
                self.ready.push_back(Task::Callback {
                    callback,
                    arg: Some(arg.clone()),
                    origin: Msg {
                        uid: origin,
                        start_ts: self.now,
                    },
                    summary,
                });
            }
        }
    }

    fn on_timer_fired(&mut self, id: u64) -> Result<(), BrowserError> {
        if let Some((callback, uid)) = self.timers.remove(&id) {
            self.ready.push_back(Task::Callback {
                callback,
                arg: None,
                origin: Msg {
                    uid,
                    start_ts: self.now,
                },
                summary: None,
            });
            self.try_start()?;
        }
        Ok(())
    }

    fn on_gov_tick(&mut self, end: SimTime) {
        let Some(period) = self.scheduler.timer_period() else {
            return;
        };
        self.cpu.advance(self.now);
        let busy = self.cpu.busy_time();
        let delta = busy - self.util_mark;
        self.util_mark = busy;
        let utilization = (delta.as_secs_f64() / period.as_secs_f64()).clamp(0.0, 1.0);
        let desired = {
            let ctx = SchedulerCtx {
                doc: &self.doc,
                cpu: &self.cpu,
            };
            self.scheduler.on_timer(self.now, utilization, &ctx)
        };
        self.apply_config(desired);
        let next = self.now + period;
        if next <= end {
            self.push_event(next, SimEventKind::GovTick);
        }
    }

    fn on_task_done(&mut self, gen: u64) -> Result<(), BrowserError> {
        let matches = self.running.as_ref().is_some_and(|r| r.gen == gen);
        if !matches {
            return Ok(()); // Stale completion from before a config switch.
        }
        self.cpu.advance(self.now);
        let running = self.running.take().expect("checked above");
        if let Some(trace) = self.trace.clone() {
            let (kind, uids, label, ops) = match &running.kind {
                RunningKind::Callback { origin, ops, .. } => (
                    SpanKind::Callback,
                    vec![origin.uid.0],
                    Some(self.origin_event(origin.uid).name()),
                    *ops,
                ),
                RunningKind::Stage { stage, msgs } => (
                    stage_span(*stage),
                    msgs.iter().map(|m| m.uid.0).collect(),
                    None,
                    0,
                ),
            };
            trace.record(
                self.now,
                TraceKind::Span {
                    kind,
                    start: running.started,
                    dur: self.now.saturating_since(running.started),
                    uids,
                    label,
                    ops,
                },
            );
        }
        match running.kind {
            RunningKind::Callback {
                effects,
                origin,
                ops: _,
                summary,
            } => {
                self.apply_effects(*effects, origin, summary);
            }
            RunningKind::Stage { stage, msgs } => {
                if stage == Stage::Composite {
                    let records = self.tracker.complete_frame(&msgs, self.now);
                    if let Some(trace) = self.trace.clone() {
                        for record in &records {
                            trace.record(
                                self.now,
                                TraceKind::FrameCommit {
                                    uid: record.uid.0,
                                    seq: record.seq,
                                    latency: record.latency,
                                    event: record.event.name(),
                                },
                            );
                        }
                    }
                    let desired = {
                        let ctx = SchedulerCtx {
                            doc: &self.doc,
                            cpu: &self.cpu,
                        };
                        self.scheduler.on_frames_complete(self.now, &records, &ctx)
                    };
                    self.apply_config(desired);
                }
            }
        }
        if self.ready.is_empty() && self.running.is_none() {
            self.cpu.set_busy(self.now, false);
            let desired = {
                let ctx = SchedulerCtx {
                    doc: &self.doc,
                    cpu: &self.cpu,
                };
                self.scheduler.on_idle(self.now, &ctx)
            };
            self.apply_config(desired);
        }
        self.try_start()?;
        Ok(())
    }

    fn apply_effects(
        &mut self,
        effects: CallbackEffects,
        origin: Msg,
        summary: Option<Rc<HandlerSummary>>,
    ) {
        // The analyzer's correctness contract: everything the callback
        // actually did must be admitted by its static summary
        // (dynamic ⊆ static). A violation is recorded, trips a debug
        // assertion, and permanently distrusts summaries for
        // invalidation downgrades in this browser.
        if let Some(hs) = summary.as_deref() {
            self.effect_checks += 1;
            let violations = hs.summary.admits(&effects, &self.doc, Some(hs.node));
            if !violations.is_empty() {
                for v in &violations {
                    self.effect_violations.push(format!(
                        "{}: on{} handler #{} at {}: {v}",
                        self.app_name, hs.event, hs.index, hs.node
                    ));
                }
                self.summaries_distrusted = true;
                if self.effect_assertions {
                    debug_assert!(
                        false,
                        "observed CallbackEffects escape the static EffectSummary: {violations:?}"
                    );
                }
            }
        }
        let meta = self.input_meta.iter_mut().find(|m| m.uid == origin.uid);
        if let Some(meta) = meta {
            meta.used_raf |= effects.used_raf();
            meta.used_animate |= effects.used_animate();
        }
        for (node, event, callback) in effects.listeners {
            self.listeners.add(node, event, callback);
        }
        for (callback, delay_ms) in effects.timers {
            self.next_timer += 1;
            let id = self.next_timer;
            self.timers.insert(id, (callback, origin.uid));
            self.push_event(
                self.now + Duration::from_millis_f64(delay_ms),
                SimEventKind::Timer { id },
            );
        }
        for callback in effects.raf {
            self.raf_queue.push((callback, origin.uid));
        }
        for call in effects.animates {
            let from_px = self
                .overlay
                .get(&(call.node, call.property.clone()))
                .and_then(CssValue::as_number)
                .unwrap_or(0.0);
            self.host_animations.push(ActiveHostAnimation {
                node: call.node,
                property: call.property,
                from_px,
                to_px: call.to_px,
                start_ms: self.now.as_millis_f64(),
                duration_ms: call.duration_ms,
                origin: origin.uid,
            });
        }
        // Invalidate the style cache *before* arming animations, so
        // every resolve below sees post-write state. The ladder:
        // structural mutations (or attribute mutations with no trusted
        // static summary) can re-route matching for arbitrary nodes and
        // drop everything; attribute-only mutations whose summary proves
        // the callback cannot mutate structure and bounds every write to
        // a known target set invalidate only the written subtrees (an
        // attribute on a node changes matching only for the node and its
        // descendants — the selector grammar has descendant/child
        // combinators only); inline style writes always invalidate only
        // the written subtree.
        if effects.dom_mutated {
            let downgrade = self.effect_gate
                && !self.summaries_distrusted
                && !effects.tree_mutated
                && summary
                    .as_deref()
                    .is_some_and(|hs| hs.summary.supports_targeted_invalidation());
            if downgrade {
                self.style_cache.get_mut().note_avoided_clear();
                for &node in &effects.attr_writes {
                    self.style_cache
                        .get_mut()
                        .invalidate_subtree(&self.doc, node);
                }
            } else {
                self.style_cache.get_mut().clear();
            }
        }
        for write in &effects.style_writes {
            self.style_cache
                .get_mut()
                .invalidate_subtree(&self.doc, write.node);
        }
        let mut armed_css = false;
        for write in effects.style_writes {
            armed_css |= self.maybe_arm_animation(&write, origin.uid);
        }
        if armed_css {
            if let Some(meta) = self.input_meta.iter_mut().find(|m| m.uid == origin.uid) {
                meta.armed_css_animation = true;
            }
        }
        self.logs.extend(effects.logs);
        if effects.dirty {
            self.tracker.mark_dirty(origin);
        }
    }

    /// Arms a CSS transition or keyframe animation for a style write, per
    /// the element's computed `transition` / `animation` properties.
    fn maybe_arm_animation(&mut self, write: &crate::host::StyleWrite, origin: InputId) -> bool {
        let now_ms = self.now.as_millis_f64();
        if write.property == "animation" {
            if let Some(spec) = AnimationSpec::parse(&write.new) {
                if self
                    .style
                    .stylesheet()
                    .keyframes_by_name(&spec.name)
                    .is_some()
                {
                    self.css_animations.push(ActiveCssAnimation {
                        node: write.node,
                        state: AnimationState::start(spec, now_ms),
                        origin,
                    });
                    return true;
                }
            }
            return false;
        }
        // One resolve yields both views: the full computed style (to read
        // `transition`) and the cascade without the just-written inline
        // override (the transition's start value). The seed resolved the
        // node twice here — full at the top, inline-less again below.
        let (computed, without_inline) =
            self.style_cache
                .get_mut()
                .resolve(&self.style, &self.doc, write.node);
        let Some(transition_value) = computed.get("transition") else {
            return false;
        };
        let specs = TransitionSpec::parse_list(transition_value);
        let Some(spec) = specs.iter().find(|s| s.covers(&write.property)) else {
            return false;
        };
        // The transition's start value: the previous inline value, or —
        // when the property's initial value came from the stylesheet
        // (Fig. 4's `div#ex { width: 100px; }`) — the cascaded value
        // without the just-written inline override.
        let old = write
            .old
            .clone()
            .or_else(|| without_inline.get(&write.property).cloned());
        let Some(old) = old else {
            // No previous value at all: a property gaining its first
            // value does not transition (per CSS).
            return false;
        };
        if old == write.new {
            return false;
        }
        // Cancel a running transition on the same property, if any.
        self.transitions
            .retain(|t| !(t.node == write.node && t.state.property == write.property));
        self.transitions.push(ActiveTransition {
            node: write.node,
            state: TransitionState::start(spec, &write.property, old, write.new.clone(), now_ms),
            origin,
        });
        true
    }

    /// The computed style of `node`, resolved through the cache.
    pub fn computed_style(&self, node: NodeId) -> ComputedStyle {
        self.style_cache
            .borrow_mut()
            .resolve(&self.style, &self.doc, node)
            .0
    }

    fn apply_config(&mut self, desired: Option<CpuConfig>) {
        let Some(to) = desired else { return };
        if to == self.cpu.config() {
            return;
        }
        if let Some(running) = self.running.as_mut() {
            let elapsed = self.now.saturating_since(running.since);
            running.remaining = self.cpu.remaining_after(&running.remaining, elapsed);
            running.since = self.now;
        }
        let from = self.cpu.config();
        let penalty = self.cpu.switch(self.now, to);
        record_into(&self.trace, self.now, || TraceKind::ConfigSwitch {
            from,
            to,
            penalty,
        });
        if self.running.is_some() {
            let gen = self.next_gen();
            let running = self.running.as_mut().expect("checked");
            running.remaining.independent_ns += penalty.as_nanos() as f64;
            running.gen = gen;
            let duration = self.cpu.duration_of(&running.remaining);
            self.push_event(self.now + duration, SimEventKind::TaskDone { gen });
        }
    }

    fn try_start(&mut self) -> Result<(), BrowserError> {
        while self.running.is_none() {
            let Some(task) = self.ready.pop_front() else {
                return Ok(());
            };
            match task {
                Task::BeginFrame => self.begin_frame(),
                Task::Callback {
                    callback,
                    arg,
                    origin,
                    summary,
                } => {
                    self.start_callback(callback, arg, origin, summary)?;
                }
                Task::Stage { stage, msgs, seq } => {
                    // Pricing inputs were computed once for this frame
                    // by the render pass in `begin_frame` (the four
                    // stages run back-to-back): style still scales with
                    // the document, layout with the dirty elements,
                    // paint with the damaged display-item fraction.
                    let info = self.frame_render;
                    let work = match stage {
                        Stage::Layout => self.cost.layout_work(info.dirty_elements, seq),
                        Stage::Paint => {
                            self.cost
                                .paint_work(info.damage_items, info.total_items, seq)
                        }
                        Stage::Style | Stage::Composite => {
                            self.cost.stage_work(stage, info.elements, seq)
                        }
                    };
                    self.start_task(RunningKind::Stage { stage, msgs }, work);
                }
            }
        }
        Ok(())
    }

    fn origin_event(&self, uid: InputId) -> EventType {
        // O(1): the tracker indexed every input's event type at
        // registration (this runs per frame per batched message).
        self.tracker.event_for(uid).unwrap_or(EventType::Click)
    }

    /// Runs the per-frame render pass (fingerprint → measure → position
    /// → display-list diff) and returns the pricing inputs. Styles
    /// resolve through the computed-style cache; animation overlay
    /// values ride on top, exactly as [`Browser::computed_style`]
    /// composes them for scripts.
    fn run_render_pass(&mut self) -> FrameRenderInfo {
        let doc = &self.doc;
        let style = &self.style;
        let cache = &self.style_cache;
        self.render
            .render_frame(doc, style.generation(), &self.overlay, &mut |node| {
                cache.borrow_mut().resolve(style, doc, node).0
            })
    }

    fn begin_frame(&mut self) {
        let Some(msgs) = self.tracker.begin_frame() else {
            return;
        };
        let seq = msgs
            .iter()
            .map(|m| self.tracker.frames_for(m.uid))
            .max()
            .unwrap_or(0);
        let origins: Vec<(InputId, EventType)> = msgs
            .iter()
            .map(|m| (m.uid, self.origin_event(m.uid)))
            .collect();
        self.cpu.advance(self.now);
        let desired = {
            let ctx = SchedulerCtx {
                doc: &self.doc,
                cpu: &self.cpu,
            };
            self.scheduler.on_frame_start(self.now, &origins, &ctx)
        };
        self.apply_config(desired);
        self.frame_render = self.run_render_pass();
        let msgs = Rc::new(msgs);
        for stage in Stage::ALL.into_iter().rev() {
            self.ready.push_front(Task::Stage {
                stage,
                msgs: Rc::clone(&msgs),
                seq,
            });
        }
    }

    fn start_callback(
        &mut self,
        callback: Value,
        arg: Option<Value>,
        origin: Msg,
        summary: Option<Rc<HandlerSummary>>,
    ) -> Result<(), BrowserError> {
        self.script.reset_ops();
        let mut host = ScriptHost::new(&mut self.doc, self.now.as_millis_f64());
        let args: Vec<Value> = arg.into_iter().collect();
        self.script.call_function(&callback, &args, &mut host)?;
        let effects = host.effects;
        let ops = self.script.ops();
        self.script_stats.callbacks += 1;
        self.script_stats.ops += ops;
        self.script_stats.dispatches += self.script.dispatches();
        let mut work = self
            .cost
            .callback_work(ops, effects.work_cycles, effects.gpu_ms);
        if let Some(injector) = self.injector.as_mut() {
            let multiplier = injector.callback_multiplier(self.now);
            if multiplier != 1.0 {
                work.cycles *= multiplier;
                work.independent_ns *= multiplier;
            }
        }
        self.start_task(
            RunningKind::Callback {
                effects: Box::new(effects),
                origin,
                ops,
                summary,
            },
            work,
        );
        Ok(())
    }

    fn start_task(&mut self, kind: RunningKind, work: WorkUnit) {
        self.cpu.set_busy(self.now, true);
        let gen = self.next_gen();
        let duration = self.cpu.duration_of(&work);
        self.running = Some(Running {
            kind,
            remaining: work,
            since: self.now,
            started: self.now,
            gen,
        });
        self.push_event(self.now + duration, SimEventKind::TaskDone { gen });
    }
}

impl<S: Scheduler> fmt::Debug for Browser<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Browser")
            .field("app", &self.app_name)
            .field("now", &self.now)
            .field("config", &self.cpu.config())
            .finish_non_exhaustive()
    }
}
