//! Seeded, deterministic fault injection for the frame pipeline.
//!
//! A [`FaultPlan`] describes *which* chaos to inject (load spikes,
//! dropped/jittered VSync ticks, delayed/dropped/duplicated inputs,
//! power-sensor noise/dropout) and carries a seed; a [`FaultInjector`]
//! executes the plan with one independent [`DetRng`] stream per fault
//! category, so two runs with the same plan inject byte-identical fault
//! schedules, and enabling one category never perturbs another's stream.
//!
//! Every fault that actually fires is appended to a log the browser
//! publishes as a [`ChaosReport`] — degradation must be observable, not
//! just survivable.

use crate::events::TraceEvent;
use greenweb_acmp::{Duration, SimTime};
use greenweb_det::DetRng;
use greenweb_dom::EventType;
use std::fmt;

/// Load-spike injection: each callback's cost is multiplied with some
/// probability, modeling GC pauses, ad-script bursts, and cache-cold
/// execution the profiler never saw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpikeSpec {
    /// Probability a given callback execution spikes.
    pub prob: f64,
    /// Cost multiplier applied when it does (> 1).
    pub multiplier: f64,
}

/// VSync fault injection: display ticks can be dropped entirely or
/// delivered late (timing jitter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VsyncFaultSpec {
    /// Probability a tick is swallowed (no frame work that interval).
    pub drop_prob: f64,
    /// Probability a tick is delivered late.
    pub jitter_prob: f64,
    /// Maximum lateness of a jittered tick, in milliseconds.
    pub jitter_max_ms: f64,
}

/// Input-delivery fault injection: trace inputs can arrive late (and
/// thereby reordered), be lost, or be delivered twice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputFaultSpec {
    /// Probability an input is delayed.
    pub delay_prob: f64,
    /// Maximum delay, in milliseconds.
    pub delay_max_ms: f64,
    /// Probability an input is dropped.
    pub drop_prob: f64,
    /// Probability an input is duplicated (the copy arrives a few
    /// milliseconds later).
    pub duplicate_prob: f64,
}

/// Power-sensor fault injection, sampled once per VSync interval (~60 Hz,
/// like the XU+E's on-board meters): the sensor can drop out (read
/// nothing) or mis-read by a calibration-noise factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFaultSpec {
    /// Probability a sample interval is a dropout (gain 0).
    pub dropout_prob: f64,
    /// Probability a sample interval is noisy.
    pub noise_prob: f64,
    /// Noise magnitude: a noisy interval's gain is uniform in
    /// `[1 - frac, 1 + frac]`.
    pub noise_frac: f64,
}

/// What chaos to inject. Categories left `None` are not injected, so a
/// plan can isolate a single failure mode or combine all four.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Callback cost multipliers.
    pub load_spike: Option<LoadSpikeSpec>,
    /// Dropped / jittered display ticks.
    pub vsync: Option<VsyncFaultSpec>,
    /// Delayed / dropped / duplicated inputs.
    pub input: Option<InputFaultSpec>,
    /// Power-sensor distortion.
    pub sensor: Option<SensorFaultSpec>,
    /// Restrict injection to `[start_ms, end_ms)`; `None` means the whole
    /// run. A bounded window is how recovery is demonstrated: faults
    /// stop, the watchdog re-converges.
    pub window_ms: Option<(f64, f64)>,
}

/// A seeded, reproducible fault schedule: spec + seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault streams. Same seed + same spec = identical
    /// injected schedule, byte for byte.
    pub seed: u64,
    /// What to inject.
    pub spec: FaultSpec,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed. Compose with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            spec: FaultSpec::default(),
        }
    }

    /// Enables load spikes.
    pub fn with_load_spikes(mut self, prob: f64, multiplier: f64) -> Self {
        self.spec.load_spike = Some(LoadSpikeSpec { prob, multiplier });
        self
    }

    /// Enables VSync drop/jitter.
    pub fn with_vsync_faults(
        mut self,
        drop_prob: f64,
        jitter_prob: f64,
        jitter_max_ms: f64,
    ) -> Self {
        self.spec.vsync = Some(VsyncFaultSpec {
            drop_prob,
            jitter_prob,
            jitter_max_ms,
        });
        self
    }

    /// Enables input delay/drop/duplication.
    pub fn with_input_faults(
        mut self,
        delay_prob: f64,
        delay_max_ms: f64,
        drop_prob: f64,
        duplicate_prob: f64,
    ) -> Self {
        self.spec.input = Some(InputFaultSpec {
            delay_prob,
            delay_max_ms,
            drop_prob,
            duplicate_prob,
        });
        self
    }

    /// Enables power-sensor dropout/noise.
    pub fn with_sensor_faults(
        mut self,
        dropout_prob: f64,
        noise_prob: f64,
        noise_frac: f64,
    ) -> Self {
        self.spec.sensor = Some(SensorFaultSpec {
            dropout_prob,
            noise_prob,
            noise_frac,
        });
        self
    }

    /// Restricts injection to the window `[start_ms, end_ms)`.
    pub fn with_window_ms(mut self, start_ms: f64, end_ms: f64) -> Self {
        self.spec.window_ms = Some((start_ms, end_ms));
        self
    }

    /// A "storm" preset used by the chaos harness: all four categories at
    /// aggressive rates.
    pub fn storm(seed: u64) -> Self {
        FaultPlan::new(seed)
            .with_load_spikes(0.35, 6.0)
            .with_vsync_faults(0.05, 0.10, 12.0)
            .with_input_faults(0.15, 120.0, 0.05, 0.10)
            .with_sensor_faults(0.05, 0.25, 0.30)
    }
}

/// One fault that actually fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A callback's cost was multiplied.
    LoadSpike {
        /// The applied multiplier.
        multiplier: f64,
    },
    /// A VSync tick was swallowed.
    VsyncDrop,
    /// A VSync tick was delivered late.
    VsyncJitter {
        /// How late.
        delay: Duration,
    },
    /// An input was delivered late.
    InputDelayed {
        /// The input's event type.
        event: EventType,
        /// How late.
        by: Duration,
    },
    /// An input was lost.
    InputDropped {
        /// The input's event type.
        event: EventType,
    },
    /// An input was delivered twice.
    InputDuplicated {
        /// The input's event type.
        event: EventType,
    },
    /// The power sensor read nothing for one sample interval.
    SensorDropout,
    /// The power sensor mis-read by `gain` for one sample interval.
    SensorNoise {
        /// The distorted gain (1.0 = faithful).
        gain: f64,
    },
}

impl FaultKind {
    /// Coarse category name, used for report summaries.
    pub fn category(&self) -> &'static str {
        match self {
            FaultKind::LoadSpike { .. } => "load-spike",
            FaultKind::VsyncDrop | FaultKind::VsyncJitter { .. } => "vsync",
            FaultKind::InputDelayed { .. }
            | FaultKind::InputDropped { .. }
            | FaultKind::InputDuplicated { .. } => "input",
            FaultKind::SensorDropout | FaultKind::SensorNoise { .. } => "sensor",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LoadSpike { multiplier } => {
                write!(f, "callback cost x{multiplier}")
            }
            FaultKind::VsyncDrop => write!(f, "vsync tick dropped"),
            FaultKind::VsyncJitter { delay } => {
                write!(f, "vsync tick deferred {:.2} ms", delay.as_millis_f64())
            }
            FaultKind::InputDelayed { event, by } => {
                write!(f, "{} delayed {:.2} ms", event.name(), by.as_millis_f64())
            }
            FaultKind::InputDropped { event } => write!(f, "{} dropped", event.name()),
            FaultKind::InputDuplicated { event } => write!(f, "{} duplicated", event.name()),
            FaultKind::SensorDropout => write!(f, "power sensor read nothing"),
            FaultKind::SensorNoise { gain } => {
                write!(f, "power sensor gain {gain:.3}")
            }
        }
    }
}

/// A fault that fired, with its injection time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFault {
    /// Simulation time the fault took effect. For input faults this is
    /// the input's *original* trace time.
    pub at: SimTime,
    /// What happened.
    pub kind: FaultKind,
}

/// The record of everything a [`FaultInjector`] did during a run:
/// attached to the [`crate::SimReport`] so chaos runs are observable and
/// benchmarkable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosReport {
    /// The plan's seed (0 when no injector ran).
    pub seed: u64,
    /// Every fault that fired, in injection order.
    pub faults: Vec<InjectedFault>,
}

impl ChaosReport {
    /// Total number of injected faults.
    pub fn total(&self) -> usize {
        self.faults.len()
    }

    /// Number of injected faults in `category` (see
    /// [`FaultKind::category`]).
    pub fn count(&self, category: &str) -> usize {
        self.faults
            .iter()
            .filter(|f| f.kind.category() == category)
            .count()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chaos seed {}: {} faults ({} load-spike, {} vsync, {} input, {} sensor)",
            self.seed,
            self.total(),
            self.count("load-spike"),
            self.count("vsync"),
            self.count("input"),
            self.count("sensor"),
        )
    }
}

/// How the injector wants a VSync tick handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VsyncDisposition {
    /// Deliver normally.
    Deliver,
    /// Swallow the tick: no frame work this interval.
    Drop,
    /// Deliver the tick late by the given amount.
    Defer(Duration),
}

/// Executes a [`FaultPlan`] against a run. One forked RNG stream per
/// category keeps the schedule stable when categories are toggled.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    callback_rng: DetRng,
    vsync_rng: DetRng,
    input_rng: DetRng,
    sensor_rng: DetRng,
    log: Vec<InjectedFault>,
}

impl FaultInjector {
    /// Builds the injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let root = DetRng::new(plan.seed);
        FaultInjector {
            plan,
            callback_rng: root.fork("callback"),
            vsync_rng: root.fork("vsync"),
            input_rng: root.fork("input"),
            sensor_rng: root.fork("sensor"),
            log: Vec::new(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn active_at(&self, now: SimTime) -> bool {
        match self.plan.spec.window_ms {
            None => true,
            Some((start, end)) => {
                let ms = now.as_millis_f64();
                ms >= start && ms < end
            }
        }
    }

    /// Cost multiplier for a callback starting at `now` (1.0 = no fault).
    pub fn callback_multiplier(&mut self, now: SimTime) -> f64 {
        let Some(spec) = self.plan.spec.load_spike else {
            return 1.0;
        };
        if !self.active_at(now) || !self.callback_rng.gen_bool(spec.prob) {
            return 1.0;
        }
        self.log.push(InjectedFault {
            at: now,
            kind: FaultKind::LoadSpike {
                multiplier: spec.multiplier,
            },
        });
        spec.multiplier
    }

    /// Disposition for the VSync tick at `now`.
    pub fn on_vsync(&mut self, now: SimTime) -> VsyncDisposition {
        let Some(spec) = self.plan.spec.vsync else {
            return VsyncDisposition::Deliver;
        };
        if !self.active_at(now) {
            return VsyncDisposition::Deliver;
        }
        if self.vsync_rng.gen_bool(spec.drop_prob) {
            self.log.push(InjectedFault {
                at: now,
                kind: FaultKind::VsyncDrop,
            });
            return VsyncDisposition::Drop;
        }
        if self.vsync_rng.gen_bool(spec.jitter_prob) {
            let delay =
                Duration::from_millis_f64(self.vsync_rng.f64_in(0.5, spec.jitter_max_ms.max(0.6)));
            self.log.push(InjectedFault {
                at: now,
                kind: FaultKind::VsyncJitter { delay },
            });
            return VsyncDisposition::Defer(delay);
        }
        VsyncDisposition::Deliver
    }

    /// Power-sensor gain for the sample interval starting at `now`
    /// (1.0 = faithful).
    pub fn sensor_gain(&mut self, now: SimTime) -> f64 {
        let Some(spec) = self.plan.spec.sensor else {
            return 1.0;
        };
        if !self.active_at(now) {
            return 1.0;
        }
        if self.sensor_rng.gen_bool(spec.dropout_prob) {
            self.log.push(InjectedFault {
                at: now,
                kind: FaultKind::SensorDropout,
            });
            return 0.0;
        }
        if self.sensor_rng.gen_bool(spec.noise_prob) {
            let gain = self
                .sensor_rng
                .f64_in(1.0 - spec.noise_frac, 1.0 + spec.noise_frac)
                .max(0.0);
            self.log.push(InjectedFault {
                at: now,
                kind: FaultKind::SensorNoise { gain },
            });
            return gain;
        }
        1.0
    }

    /// Applies input faults to a trace's events: drops, duplicates, and
    /// delays (which reorder). Returns the perturbed delivery schedule
    /// sorted by arrival time.
    pub fn perturb_inputs(&mut self, events: &[TraceEvent]) -> Vec<TraceEvent> {
        let Some(spec) = self.plan.spec.input else {
            return events.to_vec();
        };
        let mut out: Vec<TraceEvent> = Vec::with_capacity(events.len());
        for event in events {
            if !self.active_at(event.at) {
                out.push(event.clone());
                continue;
            }
            if self.input_rng.gen_bool(spec.drop_prob) {
                self.log.push(InjectedFault {
                    at: event.at,
                    kind: FaultKind::InputDropped { event: event.event },
                });
                continue;
            }
            let mut delivered = event.clone();
            if self.input_rng.gen_bool(spec.delay_prob) {
                let by = Duration::from_millis_f64(
                    self.input_rng.f64_in(0.5, spec.delay_max_ms.max(0.6)),
                );
                self.log.push(InjectedFault {
                    at: event.at,
                    kind: FaultKind::InputDelayed {
                        event: event.event,
                        by,
                    },
                });
                delivered.at += by;
            }
            if self.input_rng.gen_bool(spec.duplicate_prob) {
                self.log.push(InjectedFault {
                    at: event.at,
                    kind: FaultKind::InputDuplicated { event: event.event },
                });
                let mut copy = delivered.clone();
                copy.at += Duration::from_millis_f64(self.input_rng.f64_in(1.0, 8.0));
                out.push(copy);
            }
            out.push(delivered);
        }
        out.sort_by_key(|e| e.at);
        out
    }

    /// The faults injected so far, as a report.
    pub fn report(&self) -> ChaosReport {
        ChaosReport {
            seed: self.plan.seed,
            faults: self.log.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Trace;

    fn sample_trace() -> Trace {
        let mut b = Trace::builder();
        for i in 0..40 {
            b = b.click_id(10.0 + i as f64 * 50.0, "x");
        }
        b.end_ms(2_500.0).build()
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(1));
        let trace = sample_trace();
        assert_eq!(inj.perturb_inputs(&trace.events), trace.events);
        assert_eq!(inj.callback_multiplier(SimTime::from_millis(5)), 1.0);
        assert_eq!(
            inj.on_vsync(SimTime::from_millis(16)),
            VsyncDisposition::Deliver
        );
        assert_eq!(inj.sensor_gain(SimTime::from_millis(16)), 1.0);
        assert_eq!(inj.report().total(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::storm(42);
        let trace = sample_trace();
        let run = || {
            let mut inj = FaultInjector::new(plan);
            let inputs = inj.perturb_inputs(&trace.events);
            let mults: Vec<f64> = (0..50)
                .map(|i| inj.callback_multiplier(SimTime::from_millis(i * 7)))
                .collect();
            let vsyncs: Vec<VsyncDisposition> = (1..50)
                .map(|i| inj.on_vsync(SimTime::from_millis(i * 16)))
                .collect();
            let gains: Vec<f64> = (1..50)
                .map(|i| inj.sensor_gain(SimTime::from_millis(i * 16)))
                .collect();
            (inputs, mults, vsyncs, gains, inj.report())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let trace = sample_trace();
        let schedule = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::storm(seed));
            inj.perturb_inputs(&trace.events);
            inj.report()
        };
        assert_ne!(schedule(1), schedule(2));
    }

    #[test]
    fn every_fired_fault_is_logged() {
        let mut inj = FaultInjector::new(
            FaultPlan::new(7)
                .with_load_spikes(1.0, 4.0)
                .with_sensor_faults(1.0, 0.0, 0.0),
        );
        assert_eq!(inj.callback_multiplier(SimTime::from_millis(1)), 4.0);
        assert_eq!(inj.sensor_gain(SimTime::from_millis(2)), 0.0);
        let report = inj.report();
        assert_eq!(report.total(), 2);
        assert_eq!(report.count("load-spike"), 1);
        assert_eq!(report.count("sensor"), 1);
    }

    #[test]
    fn window_bounds_injection() {
        let mut inj = FaultInjector::new(
            FaultPlan::new(3)
                .with_load_spikes(1.0, 4.0)
                .with_window_ms(100.0, 200.0),
        );
        assert_eq!(inj.callback_multiplier(SimTime::from_millis(50)), 1.0);
        assert_eq!(inj.callback_multiplier(SimTime::from_millis(150)), 4.0);
        assert_eq!(inj.callback_multiplier(SimTime::from_millis(250)), 1.0);
        assert_eq!(inj.report().total(), 1);
    }

    #[test]
    fn dropped_inputs_shrink_duplicates_grow() {
        let trace = sample_trace();
        let mut drop_all =
            FaultInjector::new(FaultPlan::new(5).with_input_faults(0.0, 0.0, 1.0, 0.0));
        assert!(drop_all.perturb_inputs(&trace.events).is_empty());
        assert_eq!(drop_all.report().count("input"), trace.events.len());
        let mut dup_all =
            FaultInjector::new(FaultPlan::new(5).with_input_faults(0.0, 0.0, 0.0, 1.0));
        assert_eq!(
            dup_all.perturb_inputs(&trace.events).len(),
            2 * trace.events.len()
        );
    }

    #[test]
    fn perturbed_inputs_stay_sorted() {
        let trace = sample_trace();
        let mut inj = FaultInjector::new(FaultPlan::storm(11));
        let events = inj.perturb_inputs(&trace.events);
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }
}
