//! The browser's script host: the native functions event callbacks can
//! call, and the effect log the engine applies when a callback's CPU time
//! has been accounted for.
//!
//! DOM reads and writes happen immediately (later statements in the same
//! callback must see them); *scheduling* effects — dirty marking, rAF and
//! timer registration, transitions armed by style writes — are recorded
//! in [`CallbackEffects`] and applied by the engine when the callback's
//! simulated execution completes.

use greenweb_css::stylesheet::parse_declarations_str;
use greenweb_css::value::CssValue;
use greenweb_dom::{Document, EventType, NodeId};
use greenweb_script::{Host, ScriptError, Value};

/// An `animate(el, prop, to, duration)` call — the stand-in for the
/// jQuery-style `animate()` that AUTOGREEN detects (Sec. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct AnimateCall {
    /// Target element.
    pub node: NodeId,
    /// Animated property.
    pub property: String,
    /// Final value in pixels.
    pub to_px: f64,
    /// Duration in milliseconds.
    pub duration_ms: f64,
}

/// One inline style write performed by a callback.
#[derive(Debug, Clone, PartialEq)]
pub struct StyleWrite {
    /// Target element.
    pub node: NodeId,
    /// Property name (lowercase).
    pub property: String,
    /// The previous inline value, if any (used to start transitions).
    pub old: Option<CssValue>,
    /// The new value.
    pub new: CssValue,
}

/// Everything a callback asked the browser to do.
#[derive(Debug, Clone, Default)]
pub struct CallbackEffects {
    /// The callback requested a repaint (explicitly or via DOM mutation).
    pub dirty: bool,
    /// The callback mutated DOM *structure or attributes* (tree edits,
    /// `setAttribute`) — mutations that can change selector matching
    /// beyond the written node's own inline style. How much of the
    /// computed-style cache this costs depends on the static
    /// [`EffectSummary`](crate::EffectSummary) for the handler, applied as
    /// an invalidation ladder in `Browser::apply_effects`:
    ///
    /// 1. `tree_mutated` (or no trusted summary, or a top summary):
    ///    structure changed — ancestor chains are stale everywhere, the
    ///    cache drops everything.
    /// 2. attribute-only mutation whose summary proves the callback
    ///    cannot mutate structure and bounds every attribute write to a
    ///    known target set: only the written subtrees are invalidated
    ///    (an attribute on a node can change matching only for that node
    ///    and its descendants — same argument as the style-cache's
    ///    subtree invalidation for inline `style`, which *is* an
    ///    attribute).
    ///
    /// Inline style writes are tracked separately in
    /// [`CallbackEffects::style_writes`] and always invalidate only the
    /// written subtree.
    pub dom_mutated: bool,
    /// The callback mutated DOM *structure* (append/remove/setText) —
    /// strictly stronger than `dom_mutated`, never set without it.
    pub tree_mutated: bool,
    /// Nodes whose attributes `setAttribute` wrote, in call order. The
    /// engine checks these against the static summary's attribute-target
    /// set and uses them for targeted subtree invalidation.
    pub attr_writes: Vec<NodeId>,
    /// `requestAnimationFrame` registrations, in call order.
    pub raf: Vec<Value>,
    /// `setTimeout` registrations: `(callback, delay in ms)`.
    pub timers: Vec<(Value, f64)>,
    /// Explicit CPU work requested via `work(cycles)`.
    pub work_cycles: f64,
    /// Explicit frequency-independent work via `gpuWork(ms)`.
    pub gpu_ms: f64,
    /// Inline style writes, in call order.
    pub style_writes: Vec<StyleWrite>,
    /// Event listener registrations.
    pub listeners: Vec<(NodeId, EventType, Value)>,
    /// `animate()` calls.
    pub animates: Vec<AnimateCall>,
    /// `log()` output.
    pub logs: Vec<String>,
}

impl CallbackEffects {
    /// Whether the callback used `requestAnimationFrame` — one of
    /// AUTOGREEN's "continuous" signals.
    pub fn used_raf(&self) -> bool {
        !self.raf.is_empty()
    }

    /// Whether the callback used `animate()` — another "continuous"
    /// signal.
    pub fn used_animate(&self) -> bool {
        !self.animates.is_empty()
    }
}

/// The host passed to the interpreter while one callback runs.
#[derive(Debug)]
pub struct ScriptHost<'a> {
    doc: &'a mut Document,
    now_ms: f64,
    /// The accumulated effects, drained by the engine afterwards.
    pub effects: CallbackEffects,
}

impl<'a> ScriptHost<'a> {
    /// Creates a host over `doc` with the virtual clock at `now_ms`.
    pub fn new(doc: &'a mut Document, now_ms: f64) -> Self {
        ScriptHost {
            doc,
            now_ms,
            effects: CallbackEffects::default(),
        }
    }

    fn node_arg(&self, args: &[Value], i: usize, fn_name: &str) -> Result<NodeId, ScriptError> {
        let idx = args
            .get(i)
            .and_then(Value::as_number)
            .ok_or_else(|| ScriptError::new(format!("{fn_name}: expected element handle")))?;
        self.doc
            .node_at(idx as usize)
            .ok_or_else(|| ScriptError::new(format!("{fn_name}: invalid element handle {idx}")))
    }

    fn str_arg(args: &[Value], i: usize, fn_name: &str) -> Result<String, ScriptError> {
        args.get(i)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ScriptError::new(format!("{fn_name}: expected string argument")))
    }

    fn num_arg(args: &[Value], i: usize, fn_name: &str) -> Result<f64, ScriptError> {
        args.get(i)
            .and_then(Value::as_number)
            .ok_or_else(|| ScriptError::new(format!("{fn_name}: expected number argument")))
    }

    fn fn_arg(args: &[Value], i: usize, fn_name: &str) -> Result<Value, ScriptError> {
        match args.get(i) {
            // Either backend's function representation is a callback:
            // tree-walker closures and compiled VM closures register and
            // dispatch identically.
            Some(v @ (Value::Function(_) | Value::VmFunction(_))) => Ok(v.clone()),
            _ => Err(ScriptError::new(format!(
                "{fn_name}: expected function argument"
            ))),
        }
    }

    /// Reads a property from an element's inline style.
    fn inline_style_value(&self, node: NodeId, property: &str) -> Option<CssValue> {
        let style = self.doc.element(node)?.attribute("style")?;
        let decls = parse_declarations_str(style).ok()?;
        decls
            .into_iter()
            .rev()
            .find(|d| d.property == property)
            .map(|d| d.value)
    }

    /// Merges `property: raw_value` into the element's `style` attribute.
    fn write_inline_style(&mut self, node: NodeId, property: &str, raw_value: &str) {
        let existing = self
            .doc
            .element(node)
            .and_then(|el| el.attribute("style"))
            .unwrap_or("")
            .to_string();
        let mut decls = parse_declarations_str(&existing).unwrap_or_default();
        decls.retain(|d| d.property != property);
        let mut css = String::new();
        for d in &decls {
            css.push_str(&format!("{}: {}; ", d.property, d.value));
        }
        css.push_str(&format!("{property}: {raw_value}"));
        if let Some(el) = self.doc.element_mut(node) {
            el.set_attribute("style", css);
        }
    }
}

impl Host for ScriptHost<'_> {
    fn call(&mut self, name: &str, args: &[Value]) -> Option<Result<Value, ScriptError>> {
        let result = match name {
            "getElementById" => (|| {
                let id = Self::str_arg(args, 0, name)?;
                Ok(match self.doc.element_by_id(&id) {
                    Some(node) => Value::Number(node.index() as f64),
                    None => Value::Null,
                })
            })(),
            "document" => Ok(Value::Number(self.doc.root().index() as f64)),
            "getAttribute" => (|| {
                let node = self.node_arg(args, 0, name)?;
                let attr = Self::str_arg(args, 1, name)?;
                Ok(self
                    .doc
                    .element(node)
                    .and_then(|el| el.attribute(&attr))
                    .map_or(Value::Null, Value::str))
            })(),
            "setAttribute" => (|| {
                let node = self.node_arg(args, 0, name)?;
                let attr = Self::str_arg(args, 1, name)?;
                let value = args
                    .get(2)
                    .map(std::string::ToString::to_string)
                    .unwrap_or_default();
                if let Some(el) = self.doc.element_mut(node) {
                    el.set_attribute(attr, value);
                }
                self.effects.dirty = true;
                self.effects.dom_mutated = true;
                self.effects.attr_writes.push(node);
                Ok(Value::Null)
            })(),
            "setStyle" => (|| {
                let node = self.node_arg(args, 0, name)?;
                let property = Self::str_arg(args, 1, name)?.to_ascii_lowercase();
                let raw = match args.get(2) {
                    Some(Value::Number(n)) => format!("{n}px"),
                    Some(other) => other.to_string(),
                    None => return Err(ScriptError::new("setStyle: missing value")),
                };
                let old = self.inline_style_value(node, &property);
                self.write_inline_style(node, &property, &raw);
                let new = self
                    .inline_style_value(node, &property)
                    .unwrap_or(CssValue::Keyword(raw));
                self.effects.style_writes.push(StyleWrite {
                    node,
                    property,
                    old,
                    new,
                });
                self.effects.dirty = true;
                Ok(Value::Null)
            })(),
            "getStyle" => (|| {
                let node = self.node_arg(args, 0, name)?;
                let property = Self::str_arg(args, 1, name)?.to_ascii_lowercase();
                Ok(self
                    .inline_style_value(node, &property)
                    .map_or(Value::Null, |v| Value::str(v.to_string())))
            })(),
            "addEventListener" => (|| {
                let node = self.node_arg(args, 0, name)?;
                let event: EventType = Self::str_arg(args, 1, name)?
                    .parse()
                    .map_err(|e| ScriptError::new(format!("{name}: {e}")))?;
                let callback = Self::fn_arg(args, 2, name)?;
                self.effects.listeners.push((node, event, callback));
                Ok(Value::Null)
            })(),
            "requestAnimationFrame" => (|| {
                let callback = Self::fn_arg(args, 0, name)?;
                self.effects.raf.push(callback);
                Ok(Value::Number(self.effects.raf.len() as f64))
            })(),
            "setTimeout" => (|| {
                let callback = Self::fn_arg(args, 0, name)?;
                let delay = Self::num_arg(args, 1, name)?.max(0.0);
                self.effects.timers.push((callback, delay));
                Ok(Value::Number(self.effects.timers.len() as f64))
            })(),
            "work" => (|| {
                let cycles = Self::num_arg(args, 0, name)?;
                if cycles < 0.0 {
                    return Err(ScriptError::new("work: negative cycles"));
                }
                self.effects.work_cycles += cycles;
                Ok(Value::Null)
            })(),
            "gpuWork" => (|| {
                let ms = Self::num_arg(args, 0, name)?;
                if ms < 0.0 {
                    return Err(ScriptError::new("gpuWork: negative duration"));
                }
                self.effects.gpu_ms += ms;
                Ok(Value::Null)
            })(),
            "markDirty" => {
                self.effects.dirty = true;
                Ok(Value::Null)
            }
            "now" => Ok(Value::Number(self.now_ms)),
            "log" => {
                let msg = args
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                self.effects.logs.push(msg);
                Ok(Value::Null)
            }
            "animate" => (|| {
                let node = self.node_arg(args, 0, name)?;
                let property = Self::str_arg(args, 1, name)?.to_ascii_lowercase();
                let to_px = Self::num_arg(args, 2, name)?;
                let duration_ms = Self::num_arg(args, 3, name)?;
                self.effects.animates.push(AnimateCall {
                    node,
                    property,
                    to_px,
                    duration_ms,
                });
                self.effects.dirty = true;
                Ok(Value::Null)
            })(),
            "createElement" => (|| {
                let tag = Self::str_arg(args, 0, name)?;
                let node = self.doc.create_element(tag);
                Ok(Value::Number(node.index() as f64))
            })(),
            "appendChild" => (|| {
                let parent = self.node_arg(args, 0, name)?;
                let child = self.node_arg(args, 1, name)?;
                self.doc.append_child(parent, child);
                self.effects.dirty = true;
                self.effects.dom_mutated = true;
                self.effects.tree_mutated = true;
                Ok(Value::Null)
            })(),
            "removeChild" => (|| {
                let node = self.node_arg(args, 0, name)?;
                self.doc.detach(node);
                self.effects.dirty = true;
                self.effects.dom_mutated = true;
                self.effects.tree_mutated = true;
                Ok(Value::Null)
            })(),
            "setText" => (|| {
                let node = self.node_arg(args, 0, name)?;
                let text = args
                    .get(1)
                    .map(std::string::ToString::to_string)
                    .unwrap_or_default();
                let children: Vec<NodeId> = self.doc.children(node).collect();
                for child in children {
                    self.doc.detach(child);
                }
                let text_node = self.doc.create_text(text);
                self.doc.append_child(node, text_node);
                self.effects.dirty = true;
                self.effects.dom_mutated = true;
                self.effects.tree_mutated = true;
                Ok(Value::Null)
            })(),
            "elementCount" => Ok(Value::Number(self.doc.elements().count() as f64)),
            _ => return None,
        };
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenweb_dom::parse_html;
    use greenweb_script::{parse_program, Interpreter};

    fn run_script(html: &str, src: &str) -> (Document, CallbackEffects) {
        let mut doc = parse_html(html).unwrap();
        let program = parse_program(src).unwrap();
        let mut interp = Interpreter::new();
        let mut host = ScriptHost::new(&mut doc, 42.0);
        interp.run(&program, &mut host).unwrap();
        let effects = host.effects;
        (doc, effects)
    }

    #[test]
    fn get_element_by_id_and_attributes() {
        let (_, fx) = run_script(
            "<div id='x' data-n='5'></div>",
            "var el = getElementById('x');
             var n = getAttribute(el, 'data-n');
             log(n);
             var missing = getElementById('nope');
             log(missing == null ? 'null' : 'found');",
        );
        assert_eq!(fx.logs, vec!["5", "null"]);
    }

    #[test]
    fn set_style_records_old_and_new() {
        let (doc, fx) = run_script(
            "<div id='x' style='width: 100px'></div>",
            "setStyle(getElementById('x'), 'width', 500);",
        );
        assert_eq!(fx.style_writes.len(), 1);
        let w = &fx.style_writes[0];
        assert_eq!(w.property, "width");
        assert_eq!(w.old.as_ref().and_then(CssValue::as_number), Some(100.0));
        assert_eq!(w.new.as_number(), Some(500.0));
        assert!(fx.dirty);
        // Inline style actually updated in the DOM.
        let x = doc.element_by_id("x").unwrap();
        let style = doc.element(x).unwrap().attribute("style").unwrap();
        assert!(style.contains("width: 500px"), "style = {style}");
    }

    #[test]
    fn set_style_preserves_other_properties() {
        let (doc, _) = run_script(
            "<div id='x' style='height: 10px; width: 1px'></div>",
            "setStyle(getElementById('x'), 'width', 2);",
        );
        let x = doc.element_by_id("x").unwrap();
        let style = doc.element(x).unwrap().attribute("style").unwrap();
        assert!(style.contains("height: 10px"));
        assert!(style.contains("width: 2px"));
    }

    #[test]
    fn raf_and_timers_recorded() {
        let (_, fx) = run_script(
            "<div id='x'></div>",
            "requestAnimationFrame(function(t) { markDirty(); });
             setTimeout(function() { work(100); }, 50);",
        );
        assert!(fx.used_raf());
        assert_eq!(fx.timers.len(), 1);
        assert_eq!(fx.timers[0].1, 50.0);
    }

    #[test]
    fn work_accumulates() {
        let (_, fx) = run_script("<p></p>", "work(1000); work(500); gpuWork(2);");
        assert_eq!(fx.work_cycles, 1500.0);
        assert_eq!(fx.gpu_ms, 2.0);
    }

    #[test]
    fn negative_work_errors() {
        let mut doc = parse_html("<p></p>").unwrap();
        let program = parse_program("work(-1);").unwrap();
        let mut interp = Interpreter::new();
        let mut host = ScriptHost::new(&mut doc, 0.0);
        assert!(interp.run(&program, &mut host).is_err());
    }

    #[test]
    fn add_event_listener_records() {
        let (_, fx) = run_script(
            "<button id='b'></button>",
            "addEventListener(getElementById('b'), 'click', function(e) { markDirty(); });",
        );
        assert_eq!(fx.listeners.len(), 1);
        assert_eq!(fx.listeners[0].1, EventType::Click);
    }

    #[test]
    fn bad_event_name_errors() {
        let mut doc = parse_html("<p id='p'></p>").unwrap();
        let program =
            parse_program("addEventListener(getElementById('p'), 'hover', function(){});").unwrap();
        let mut interp = Interpreter::new();
        let mut host = ScriptHost::new(&mut doc, 0.0);
        assert!(interp.run(&program, &mut host).is_err());
    }

    #[test]
    fn animate_records_call() {
        let (_, fx) = run_script(
            "<div id='x'></div>",
            "animate(getElementById('x'), 'width', 300, 1000);",
        );
        assert!(fx.used_animate());
        assert_eq!(fx.animates[0].to_px, 300.0);
        assert!(fx.dirty);
    }

    #[test]
    fn dom_mutation_marks_dirty() {
        let (doc, fx) = run_script(
            "<ul id='list'></ul>",
            "var li = createElement('li');
             appendChild(getElementById('list'), li);
             setText(li, 'item ' + 1);",
        );
        assert!(fx.dirty);
        assert_eq!(doc.elements_by_tag("li").len(), 1);
        assert_eq!(doc.text_content(doc.root()), "item 1");
    }

    #[test]
    fn now_reports_virtual_clock() {
        let (_, fx) = run_script("<p></p>", "log(now());");
        assert_eq!(fx.logs, vec!["42"]);
    }

    #[test]
    fn unknown_function_propagates_none() {
        let mut doc = parse_html("<p></p>").unwrap();
        let program = parse_program("fooBar();").unwrap();
        let mut interp = Interpreter::new();
        let mut host = ScriptHost::new(&mut doc, 0.0);
        let err = interp.run(&program, &mut host).unwrap_err();
        assert!(err.to_string().contains("undefined function"));
    }
}
