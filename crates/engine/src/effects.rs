//! Static per-handler effect summaries and their containment contract.
//!
//! The analyzer (`greenweb-analyze`) abstractly interprets each event
//! handler's bytecode and produces an [`EffectSummary`]: a sound
//! *over-approximation* of everything the callback can ask the browser to
//! do. The engine consumes summaries two ways:
//!
//! - `Browser::apply_effects` downgrades the computed-style cache's
//!   clear-all to targeted subtree invalidation when the summary proves
//!   the callback cannot mutate DOM structure and bounds its attribute
//!   writes to a known target set.
//! - After every summarized callback returns, the observed
//!   [`CallbackEffects`] are checked for containment in the static
//!   summary (`dynamic ⊆ static`, the analyzer's correctness contract).
//!   A violation is recorded in the run report, trips a debug assertion,
//!   and permanently distrusts the summary for invalidation purposes.
//!
//! The lattice is ordered by approximation strength: `pure` (bottom)
//! admits nothing, `top` admits everything. [`EffectSummary::join`] is
//! the least upper bound used when the analyzer merges branches; may-style
//! facts join with ∨/max/∪ while must-style facts (`rafs_min`,
//! `animates_min`) join with min so a guarantee survives only if every
//! branch provides it.

use crate::host::CallbackEffects;
use greenweb_dom::{Document, EventType, NodeId};
use std::collections::BTreeSet;

/// Where a statically tracked attribute or inline-style write can land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EffectTarget {
    /// Exactly this node (only producible by hand-built summaries; the
    /// analyzer never resolves ids statically because `setAttribute` can
    /// re-route id resolution at runtime).
    Node(NodeId),
    /// Some node within the subtree rooted at the listener's registered
    /// node. Sound for writes through `e.target`: dispatch fires a
    /// listener only on the capture/target phases, so the event target is
    /// always a descendant-or-self of the registered node.
    ListenerSubtree,
}

impl EffectTarget {
    fn render(self) -> String {
        match self {
            EffectTarget::Node(n) => format!("\"{n}\""),
            EffectTarget::ListenerSubtree => "\"listener-subtree\"".to_string(),
        }
    }
}

/// An over-approximated set of write targets.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetSet {
    /// Every write provably lands on one of these targets.
    Known(BTreeSet<EffectTarget>),
    /// At least one write's target could not be bounded.
    Unknown,
}

impl Default for TargetSet {
    fn default() -> Self {
        TargetSet::Known(BTreeSet::new())
    }
}

impl TargetSet {
    /// The empty (bottom) set: no writes at all.
    pub fn empty() -> Self {
        TargetSet::default()
    }

    /// Whether this set provably contains no writes.
    pub fn is_empty(&self) -> bool {
        matches!(self, TargetSet::Known(s) if s.is_empty())
    }

    /// Adds one target, keeping `Unknown` absorbing.
    pub fn insert(&mut self, target: EffectTarget) {
        if let TargetSet::Known(s) = self {
            s.insert(target);
        }
    }

    /// Least upper bound: set union, with `Unknown` absorbing.
    pub fn join(&self, other: &TargetSet) -> TargetSet {
        match (self, other) {
            (TargetSet::Known(a), TargetSet::Known(b)) => {
                TargetSet::Known(a.union(b).copied().collect())
            }
            _ => TargetSet::Unknown,
        }
    }

    /// Lattice order: `self` at least as precise as `other`.
    pub fn leq(&self, other: &TargetSet) -> bool {
        match (self, other) {
            (_, TargetSet::Unknown) => true,
            (TargetSet::Unknown, TargetSet::Known(_)) => false,
            (TargetSet::Known(a), TargetSet::Known(b)) => a.is_subset(b),
        }
    }

    /// Whether a concrete written node is admitted by this set, given the
    /// node the checked listener was registered on.
    fn admits_node(&self, node: NodeId, listener: Option<NodeId>, doc: &Document) -> bool {
        match self {
            TargetSet::Unknown => true,
            TargetSet::Known(s) => s.iter().any(|t| match t {
                EffectTarget::Node(n) => *n == node,
                EffectTarget::ListenerSubtree => {
                    listener.is_some_and(|l| l == node || doc.ancestors(node).any(|a| a == l))
                }
            }),
        }
    }

    fn render_json(&self) -> String {
        match self {
            TargetSet::Unknown => "\"unknown\"".to_string(),
            TargetSet::Known(s) => {
                let items: Vec<String> = s.iter().map(|t| t.render()).collect();
                format!("[{}]", items.join(","))
            }
        }
    }
}

/// A sound over-approximation of one handler's possible effects.
///
/// Upper bounds (`timers`, `rafs`, `work_cycles`, `gpu_ms`) use
/// `Option`: `None` means statically unbounded. Lower bounds
/// (`rafs_min`, `animates_min`) are guarantees that hold on *every*
/// execution path; they feed AUTOGREEN's static continuity signal and
/// are `0` whenever nothing can be guaranteed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EffectSummary {
    /// The analyzer gave up (unanalyzable op, unknown callee, truncated
    /// exploration): every other may-field is at its weakest value and
    /// the summary admits any observed effects.
    pub top: bool,
    /// May mutate DOM structure (`appendChild`/`removeChild`/`setText`).
    pub may_mutate_tree: bool,
    /// Bound on `setAttribute` targets.
    pub attr_targets: TargetSet,
    /// Bound on `setStyle` targets.
    pub style_targets: TargetSet,
    /// May request a repaint (`markDirty` or any dirtying builtin).
    pub may_dirty: bool,
    /// May produce `log()` output.
    pub may_log: bool,
    /// May register new event listeners.
    pub may_add_listener: bool,
    /// May call `animate()`.
    pub may_animate: bool,
    /// Upper bound on `setTimeout` registrations per invocation.
    pub timers: Option<u64>,
    /// May register a timer with a zero (or statically unknown) delay.
    pub zero_delay_timer: bool,
    /// Provably reaches a cycle of zero-delay timer re-registrations — a
    /// timer chain the run budget would otherwise only catch at runtime.
    /// Lint evidence only; not part of the containment check.
    pub zero_delay_chain: bool,
    /// Upper bound on `requestAnimationFrame` registrations.
    pub rafs: Option<u64>,
    /// Guaranteed minimum `requestAnimationFrame` registrations.
    pub rafs_min: u64,
    /// Guaranteed minimum `animate()` calls.
    pub animates_min: u64,
    /// Upper bound on explicit `work()` cycles.
    pub work_cycles: Option<f64>,
    /// Upper bound on explicit `gpuWork()` milliseconds.
    pub gpu_ms: Option<f64>,
}

/// Tolerance when comparing observed f64 work against a static bound:
/// the analyzer folds the same literal arithmetic the VM runs, but the
/// two may legally differ by rounding.
const WORK_EPSILON: f64 = 1e-9;

impl EffectSummary {
    /// The bottom element: a provably effect-free handler.
    pub fn pure() -> Self {
        EffectSummary {
            timers: Some(0),
            rafs: Some(0),
            work_cycles: Some(0.0),
            gpu_ms: Some(0.0),
            ..EffectSummary::default()
        }
    }

    /// The top element: nothing is known, everything is admitted.
    pub fn top() -> Self {
        EffectSummary {
            top: true,
            may_mutate_tree: true,
            attr_targets: TargetSet::Unknown,
            style_targets: TargetSet::Unknown,
            may_dirty: true,
            may_log: true,
            may_add_listener: true,
            may_animate: true,
            timers: None,
            zero_delay_timer: true,
            zero_delay_chain: false,
            rafs: None,
            rafs_min: 0,
            animates_min: 0,
            work_cycles: None,
            gpu_ms: None,
        }
    }

    /// Least upper bound of two summaries (branch merge).
    pub fn join(&self, other: &EffectSummary) -> EffectSummary {
        if self.top || other.top {
            let mut t = EffectSummary::top();
            t.zero_delay_chain = self.zero_delay_chain || other.zero_delay_chain;
            t.rafs_min = self.rafs_min.min(other.rafs_min);
            t.animates_min = self.animates_min.min(other.animates_min);
            return t;
        }
        let join_u64 = |a: Option<u64>, b: Option<u64>| Some(a?.max(b?));
        let join_f64 = |a: Option<f64>, b: Option<f64>| Some(f64::max(a?, b?));
        EffectSummary {
            top: false,
            may_mutate_tree: self.may_mutate_tree || other.may_mutate_tree,
            attr_targets: self.attr_targets.join(&other.attr_targets),
            style_targets: self.style_targets.join(&other.style_targets),
            may_dirty: self.may_dirty || other.may_dirty,
            may_log: self.may_log || other.may_log,
            may_add_listener: self.may_add_listener || other.may_add_listener,
            may_animate: self.may_animate || other.may_animate,
            timers: join_u64(self.timers, other.timers),
            zero_delay_timer: self.zero_delay_timer || other.zero_delay_timer,
            zero_delay_chain: self.zero_delay_chain || other.zero_delay_chain,
            rafs: join_u64(self.rafs, other.rafs),
            rafs_min: self.rafs_min.min(other.rafs_min),
            animates_min: self.animates_min.min(other.animates_min),
            work_cycles: join_f64(self.work_cycles, other.work_cycles),
            gpu_ms: join_f64(self.gpu_ms, other.gpu_ms),
        }
    }

    /// Lattice order: every fact in `other` is at least as weak as the
    /// corresponding fact here (`self ⊑ other`).
    pub fn leq(&self, other: &EffectSummary) -> bool {
        if other.top {
            return true;
        }
        if self.top {
            return false;
        }
        let le_u64 = |a: Option<u64>, b: Option<u64>| match (a, b) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(x), Some(y)) => x <= y,
        };
        let le_f64 = |a: Option<f64>, b: Option<f64>| match (a, b) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(x), Some(y)) => x <= y + WORK_EPSILON,
        };
        (!self.may_mutate_tree || other.may_mutate_tree)
            && self.attr_targets.leq(&other.attr_targets)
            && self.style_targets.leq(&other.style_targets)
            && (!self.may_dirty || other.may_dirty)
            && (!self.may_log || other.may_log)
            && (!self.may_add_listener || other.may_add_listener)
            && (!self.may_animate || other.may_animate)
            && le_u64(self.timers, other.timers)
            && (!self.zero_delay_timer || other.zero_delay_timer)
            && (!self.zero_delay_chain || other.zero_delay_chain)
            && le_u64(self.rafs, other.rafs)
            && other.rafs_min <= self.rafs_min
            && other.animates_min <= self.animates_min
            && le_f64(self.work_cycles, other.work_cycles)
            && le_f64(self.gpu_ms, other.gpu_ms)
    }

    /// Provably no observable effect at all.
    pub fn is_pure(&self) -> bool {
        !self.top
            && !self.may_mutate_tree
            && self.attr_targets.is_empty()
            && self.style_targets.is_empty()
            && !self.may_dirty
            && !self.may_add_listener
            && !self.may_animate
            && !self.may_log
            && self.timers == Some(0)
            && self.rafs == Some(0)
            && self.work_cycles == Some(0.0)
            && self.gpu_ms == Some(0.0)
    }

    /// Provably nothing but `log()` output.
    pub fn is_logs_only(&self) -> bool {
        self.may_log
            && EffectSummary {
                may_log: false,
                ..self.clone()
            }
            .is_pure()
    }

    /// May change the DOM tree shape (the clear-all trigger).
    pub fn may_mutate_structure(&self) -> bool {
        self.top || self.may_mutate_tree
    }

    /// Whether `apply_effects` may downgrade an attribute-only mutation
    /// from clear-all to per-target subtree invalidation.
    pub fn supports_targeted_invalidation(&self) -> bool {
        !self.top && !self.may_mutate_tree && matches!(self.attr_targets, TargetSet::Known(_))
    }

    /// Compact human-readable classification for lints and text reports.
    pub fn describe(&self) -> String {
        if self.top {
            return "top (unanalyzable)".to_string();
        }
        if self.is_pure() {
            return "pure".to_string();
        }
        if self.is_logs_only() {
            return "logs-only".to_string();
        }
        let mut parts = Vec::new();
        if self.may_mutate_tree {
            parts.push("tree".to_string());
        }
        if !self.attr_targets.is_empty() {
            parts.push(match &self.attr_targets {
                TargetSet::Known(_) => "attrs(bounded)".to_string(),
                TargetSet::Unknown => "attrs(unknown)".to_string(),
            });
        }
        if !self.style_targets.is_empty() {
            parts.push(match &self.style_targets {
                TargetSet::Known(_) => "styles(bounded)".to_string(),
                TargetSet::Unknown => "styles(unknown)".to_string(),
            });
        }
        if self.may_dirty {
            parts.push("dirty".to_string());
        }
        if self.may_add_listener {
            parts.push("listeners".to_string());
        }
        if self.may_animate {
            parts.push("animate".to_string());
        }
        match self.timers {
            Some(0) => {}
            Some(n) => parts.push(format!("timers<={n}")),
            None => parts.push("timers(unbounded)".to_string()),
        }
        if self.zero_delay_chain {
            parts.push("zero-delay-chain".to_string());
        }
        match self.rafs {
            Some(0) => {}
            Some(n) => parts.push(format!("rafs<={n}")),
            None => parts.push("rafs(unbounded)".to_string()),
        }
        match self.work_cycles {
            Some(w) if w != 0.0 => parts.push(format!("work<={w:.0}")),
            Some(_) => {}
            None => parts.push("work(unbounded)".to_string()),
        }
        match self.gpu_ms {
            Some(g) if g != 0.0 => parts.push(format!("gpu<={g:.2}ms")),
            Some(_) => {}
            None => parts.push("gpu(unbounded)".to_string()),
        }
        if self.may_log {
            parts.push("logs".to_string());
        }
        parts.join("+")
    }

    /// Checks `observed ⊑ self`: returns one message per escaped effect
    /// (empty means the dynamic effects are contained in the static
    /// summary). `listener` is the node the checked callback was
    /// registered on, used to ground `ListenerSubtree` targets.
    pub fn admits(
        &self,
        observed: &CallbackEffects,
        doc: &Document,
        listener: Option<NodeId>,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        if self.top {
            return violations;
        }
        if observed.tree_mutated && !self.may_mutate_tree {
            violations.push("observed tree mutation; summary proves none".to_string());
        }
        // Target containment is only checkable post-hoc while the tree
        // shape is what it was at dispatch: a callback that moved or
        // detached nodes invalidates ancestor queries (and already pays
        // the clear-all, so precision is moot there).
        if !observed.tree_mutated {
            for &node in &observed.attr_writes {
                if !self.attr_targets.admits_node(node, listener, doc) {
                    violations.push(format!("attribute write on {node} escapes the target set"));
                }
            }
            for write in &observed.style_writes {
                if !self.style_targets.admits_node(write.node, listener, doc) {
                    violations.push(format!(
                        "style write on {} escapes the target set",
                        write.node
                    ));
                }
            }
        }
        if observed.dirty && !self.may_dirty {
            violations.push("observed dirty mark; summary proves none".to_string());
        }
        if !observed.logs.is_empty() && !self.may_log {
            violations.push("observed log output; summary proves none".to_string());
        }
        if !observed.listeners.is_empty() && !self.may_add_listener {
            violations.push("observed listener registration; summary proves none".to_string());
        }
        if !observed.animates.is_empty() && !self.may_animate {
            violations.push("observed animate(); summary proves none".to_string());
        }
        if (observed.animates.len() as u64) < self.animates_min {
            violations.push(format!(
                "observed {} animate() call(s); summary guarantees >= {}",
                observed.animates.len(),
                self.animates_min
            ));
        }
        if let Some(bound) = self.timers {
            if observed.timers.len() as u64 > bound {
                violations.push(format!(
                    "observed {} timer(s); summary bounds them at {bound}",
                    observed.timers.len()
                ));
            }
        }
        if !self.zero_delay_timer && observed.timers.iter().any(|(_, delay)| *delay <= 0.0) {
            violations.push("observed zero-delay timer; summary proves none".to_string());
        }
        if let Some(bound) = self.rafs {
            if observed.raf.len() as u64 > bound {
                violations.push(format!(
                    "observed {} rAF registration(s); summary bounds them at {bound}",
                    observed.raf.len()
                ));
            }
        }
        if (observed.raf.len() as u64) < self.rafs_min {
            violations.push(format!(
                "observed {} rAF registration(s); summary guarantees >= {}",
                observed.raf.len(),
                self.rafs_min
            ));
        }
        if let Some(bound) = self.work_cycles {
            if observed.work_cycles > bound + WORK_EPSILON {
                violations.push(format!(
                    "observed {} work cycles; summary bounds them at {bound}",
                    observed.work_cycles
                ));
            }
        }
        if let Some(bound) = self.gpu_ms {
            if observed.gpu_ms > bound + WORK_EPSILON {
                violations.push(format!(
                    "observed {} gpu ms; summary bounds them at {bound}",
                    observed.gpu_ms
                ));
            }
        }
        violations
    }

    /// Deterministic JSON rendering (stable field order).
    pub fn render_json(&self) -> String {
        let u64_or_null = |v: Option<u64>| v.map_or("null".to_string(), |n| n.to_string());
        let f64_or_null = |v: Option<f64>| v.map_or("null".to_string(), |n| format!("{n:.3}"));
        format!(
            "{{\"class\":\"{}\",\"top\":{},\"tree\":{},\"attr_targets\":{},\
             \"style_targets\":{},\"dirty\":{},\"log\":{},\"listeners\":{},\"animate\":{},\
             \"timers\":{},\"zero_delay_timer\":{},\"zero_delay_chain\":{},\"rafs\":{},\
             \"rafs_min\":{},\"animates_min\":{},\"work_cycles\":{},\"gpu_ms\":{}}}",
            self.describe(),
            self.top,
            self.may_mutate_tree,
            self.attr_targets.render_json(),
            self.style_targets.render_json(),
            self.may_dirty,
            self.may_log,
            self.may_add_listener,
            self.may_animate,
            u64_or_null(self.timers),
            self.zero_delay_timer,
            self.zero_delay_chain,
            u64_or_null(self.rafs),
            self.rafs_min,
            self.animates_min,
            f64_or_null(self.work_cycles),
            f64_or_null(self.gpu_ms),
        )
    }
}

/// One handler's static summary, keyed the way dispatch finds callbacks:
/// the registered node, the event type, and the callback's position in
/// that node's listener list (the same closure may be registered on many
/// nodes; each registration gets its own row).
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerSummary {
    /// The node the listener is registered on.
    pub node: NodeId,
    /// The event type the listener reacts to.
    pub event: EventType,
    /// Position within `listener_callbacks(node, event)`.
    pub index: usize,
    /// The inferred summary.
    pub summary: EffectSummary,
}

impl HandlerSummary {
    /// Deterministic JSON rendering.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"node\":{},\"event\":\"{}\",\"index\":{},\"summary\":{}}}",
            self.node.index(),
            self.event,
            self.index,
            self.summary.render_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenweb_dom::parse_html;

    #[test]
    fn pure_is_bottom_and_top_is_top() {
        let pure = EffectSummary::pure();
        let top = EffectSummary::top();
        assert!(pure.is_pure());
        assert!(!top.is_pure());
        assert!(pure.leq(&top));
        assert!(!top.leq(&pure));
        assert!(pure.leq(&pure) && top.leq(&top));
    }

    #[test]
    fn join_is_an_upper_bound() {
        let mut a = EffectSummary::pure();
        a.may_dirty = true;
        a.timers = Some(2);
        a.rafs_min = 3;
        let mut b = EffectSummary::pure();
        b.may_mutate_tree = true;
        b.attr_targets.insert(EffectTarget::ListenerSubtree);
        b.rafs_min = 1;
        let j = a.join(&b);
        assert!(a.leq(&j), "a ⊑ a ⊔ b");
        assert!(b.leq(&j), "b ⊑ a ⊔ b");
        assert_eq!(j.rafs_min, 1, "must-facts join with min");
        assert_eq!(j.timers, Some(2));
    }

    #[test]
    fn logs_only_classification() {
        let mut s = EffectSummary::pure();
        s.may_log = true;
        assert!(s.is_logs_only());
        assert!(!s.is_pure());
        assert_eq!(s.describe(), "logs-only");
        s.may_dirty = true;
        assert!(!s.is_logs_only());
    }

    #[test]
    fn admits_checks_subtree_containment() {
        let doc =
            parse_html("<div id='outer'><p id='inner'></p></div><div id='other'></div>").unwrap();
        let outer = doc.element_by_id("outer").unwrap();
        let inner = doc.element_by_id("inner").unwrap();
        let other = doc.element_by_id("other").unwrap();
        let mut s = EffectSummary::pure();
        s.may_dirty = true;
        s.attr_targets.insert(EffectTarget::ListenerSubtree);
        let mut fx = CallbackEffects {
            dirty: true,
            dom_mutated: true,
            ..CallbackEffects::default()
        };
        fx.attr_writes.push(inner);
        assert!(s.admits(&fx, &doc, Some(outer)).is_empty());
        fx.attr_writes.push(other);
        let violations = s.admits(&fx, &doc, Some(outer));
        assert_eq!(violations.len(), 1, "{violations:?}");
        // Without a listener node, a subtree target grounds nothing.
        assert!(!s.admits(&fx, &doc, None).is_empty());
        // Top admits anything.
        assert!(EffectSummary::top().admits(&fx, &doc, None).is_empty());
    }

    #[test]
    fn admits_flags_escaped_tree_mutation_and_bounds() {
        let doc = parse_html("<p></p>").unwrap();
        let s = EffectSummary::pure();
        let fx = CallbackEffects {
            tree_mutated: true,
            work_cycles: 5.0,
            ..CallbackEffects::default()
        };
        let violations = s.admits(&fx, &doc, None);
        assert!(violations.iter().any(|v| v.contains("tree mutation")));
        assert!(violations.iter().any(|v| v.contains("work cycles")));
    }

    #[test]
    fn must_bounds_are_checked_downward() {
        let doc = parse_html("<p></p>").unwrap();
        let mut s = EffectSummary::top();
        s.rafs_min = 1;
        let fx = CallbackEffects::default();
        // Top admits everything, including a missing guaranteed rAF —
        // the guarantee only means something on a non-top summary.
        assert!(s.admits(&fx, &doc, None).is_empty());
        let mut s = EffectSummary::pure();
        s.rafs = Some(2);
        s.rafs_min = 1;
        assert!(!s.admits(&fx, &doc, None).is_empty());
    }

    #[test]
    fn json_is_deterministic_and_tagged() {
        let s = EffectSummary::pure();
        assert_eq!(s.render_json(), s.render_json());
        assert!(s.render_json().contains("\"class\":\"pure\""));
        let h = HandlerSummary {
            node: parse_html("<p id='p'></p>")
                .unwrap()
                .element_by_id("p")
                .unwrap(),
            event: EventType::Click,
            index: 0,
            summary: s,
        };
        assert!(h.render_json().starts_with("{\"node\":"));
    }
}
