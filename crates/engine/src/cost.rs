//! Frame pipeline cost model.
//!
//! Translates browser work into [`WorkUnit`]s for the ACMP executor.
//! The style stage (Fig. 7) scales with the document's element count;
//! layout scales with the *dirty* element count from the render
//! pipeline's fingerprint diff ([`FrameCostModel::layout_work`]); paint
//! is priced as the damaged fraction of the retained display list
//! ([`FrameCostModel::paint_work`]), with the old flat
//! [`FrameCostModel::paint_cycles`] as the full-repaint price — so a
//! first frame (everything dirty, everything damaged) costs exactly
//! what the pre-incremental model charged, and later frames scale with
//! what actually changed. [`FrameCostModel::stage_work`] retains the
//! full-document prices and is what the naive oracle's accounting
//! corresponds to; the *pricing inputs* are mode-independent, so
//! `GREENWEB_PAINT_INCR` never changes a run's metrics (DESIGN.md §6k).
//! The composite stage carries a frequency-independent GPU component,
//! which is what gives Eq. 1 its non-zero `T_independent` intercept.
//! Event callbacks are charged by the script engine's op count —
//! backend-independent by the tick-parity contract, whether the
//! bytecode VM or the tree-walking oracle ran the callback — plus any
//! explicit `work()` the script performs.
//!
//! `surge_every`/`surge_factor` model the frame-complexity surges the
//! paper observes in W3School and Cnet (Sec. 7.2: "most of the QoS
//! violations come from frame complexity surges in a continuous frame
//! sequence"), which defeat a reactive predictor that scaled down too far.

use greenweb_acmp::WorkUnit;

/// The rendering pipeline stages of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Style resolution.
    Style,
    /// Layout.
    Layout,
    /// Paint.
    Paint,
    /// Composite (partially on the GPU).
    Composite,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Style, Stage::Layout, Stage::Paint, Stage::Composite];
}

/// Cost parameters for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameCostModel {
    /// CPU cycles charged per script operation (charged op, not raw
    /// VM dispatch — identical across script backends).
    pub cycles_per_op: f64,
    /// Style-stage cycles per element.
    pub style_cycles_per_element: f64,
    /// Layout-stage cycles per element.
    pub layout_cycles_per_element: f64,
    /// Paint-stage cycles for a *full* repaint. Incremental frames are
    /// charged the damaged fraction of this ([`Self::paint_work`]);
    /// [`Self::stage_work`] charges it flat, which is the naive
    /// oracle's per-frame price.
    pub paint_cycles: f64,
    /// Fixed composite-stage CPU cycles per frame.
    pub composite_cycles: f64,
    /// Frequency-independent (GPU) composite time per frame, ms.
    pub composite_independent_ms: f64,
    /// Browser→renderer IPC latency charged to each input's callback, ms.
    pub input_ipc_ms: f64,
    /// Every `surge_every`-th frame of a continuous sequence costs
    /// `surge_factor`× (0 disables surges).
    pub surge_every: u32,
    /// Cost multiplier applied on surge frames.
    pub surge_factor: f64,
}

impl Default for FrameCostModel {
    fn default() -> Self {
        FrameCostModel {
            cycles_per_op: 2_000.0,
            style_cycles_per_element: 40_000.0,
            layout_cycles_per_element: 30_000.0,
            paint_cycles: 8.0e6,
            composite_cycles: 2.0e6,
            composite_independent_ms: 1.0,
            input_ipc_ms: 0.2,
            surge_every: 0,
            surge_factor: 1.0,
        }
    }
}

impl FrameCostModel {
    /// The multiplier for the `seq`-th frame of a continuous sequence.
    pub fn surge_multiplier(&self, seq: u32) -> f64 {
        if self.surge_every > 0 && seq > 0 && seq.is_multiple_of(self.surge_every) {
            self.surge_factor
        } else {
            1.0
        }
    }

    /// Work for `stage` on a document of `elements` elements at frame
    /// sequence index `seq`.
    pub fn stage_work(&self, stage: Stage, elements: usize, seq: u32) -> WorkUnit {
        let mult = self.surge_multiplier(seq);
        let elements = elements as f64;
        match stage {
            Stage::Style => WorkUnit::cycles(self.style_cycles_per_element * elements * mult),
            Stage::Layout => WorkUnit::cycles(self.layout_cycles_per_element * elements * mult),
            Stage::Paint => WorkUnit::cycles(self.paint_cycles * mult),
            Stage::Composite => {
                WorkUnit::new(self.composite_cycles * mult, self.composite_independent_ms)
            }
        }
    }

    /// Layout-stage work when `dirty` elements need re-measurement
    /// (the render pipeline's fingerprint-diff count, identical in
    /// both rendering modes). A first frame marks every element dirty,
    /// reproducing [`Self::stage_work`]'s full-document price exactly.
    pub fn layout_work(&self, dirty: usize, seq: u32) -> WorkUnit {
        let mult = self.surge_multiplier(seq);
        WorkUnit::cycles(self.layout_cycles_per_element * dirty as f64 * mult)
    }

    /// Paint-stage work for a frame that damaged `damage_items` of the
    /// `total_items` in the retained display list: the damaged
    /// fraction of the full-repaint price. Two cases pay the *full*
    /// price: an empty display list (nothing to scale by — matches the
    /// flat pre-incremental charge) and a zero-damage frame. The
    /// latter is deliberate: a frame was produced yet the DOM-level
    /// display list is byte-identical, so the change must live
    /// somewhere the diff cannot see (a canvas surface painted by
    /// script, à la Paper.js) and the whole layer repaints. Removals
    /// can push the fraction past 1, so it clamps.
    pub fn paint_work(&self, damage_items: usize, total_items: usize, seq: u32) -> WorkUnit {
        let mult = self.surge_multiplier(seq);
        let fraction = if total_items == 0 || damage_items == 0 {
            1.0
        } else {
            (damage_items as f64 / total_items as f64).min(1.0)
        };
        WorkUnit::cycles(self.paint_cycles * fraction * mult)
    }

    /// Total work of a whole frame.
    pub fn frame_work(&self, elements: usize, seq: u32) -> WorkUnit {
        Stage::ALL.iter().fold(WorkUnit::default(), |acc, &s| {
            acc.plus(&self.stage_work(s, elements, seq))
        })
    }

    /// Work of an event callback that executed `ops` charged script
    /// operations, requested `work_cycles` of explicit CPU work, and
    /// `gpu_ms` of frequency-independent work.
    pub fn callback_work(&self, ops: u64, work_cycles: f64, gpu_ms: f64) -> WorkUnit {
        WorkUnit::new(
            ops as f64 * self.cycles_per_op + work_cycles,
            gpu_ms + self.input_ipc_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenweb_acmp::{CoreType, Platform};

    #[test]
    fn frame_work_scales_with_elements() {
        let m = FrameCostModel::default();
        let small = m.frame_work(10, 0);
        let large = m.frame_work(1000, 0);
        assert!(large.cycles > small.cycles);
        assert_eq!(small.independent_ns, large.independent_ns);
    }

    #[test]
    fn default_frame_fits_60fps_at_peak() {
        // A 100-element frame must comfortably make 16.6 ms at A15 peak —
        // otherwise even Perf would violate the imperceptible target.
        let m = FrameCostModel::default();
        let p = Platform::odroid_xu_e();
        let work = m.frame_work(100, 0);
        let d = work.duration_on(p.peak(), p.cluster(CoreType::Big).ipc);
        assert!(
            d.as_millis_f64() < 10.0,
            "frame takes {} at peak",
            d.as_millis_f64()
        );
    }

    #[test]
    fn default_frame_close_to_target_on_little() {
        // The same frame should be near/over the 16.6 ms imperceptible
        // target on the little cluster — that tension is what forces
        // GreenWeb-I onto the big core (Fig. 11a vs 11b).
        let m = FrameCostModel::default();
        let p = Platform::odroid_xu_e();
        let work = m.frame_work(100, 0);
        let d = work.duration_on(p.lowest(), p.cluster(CoreType::Little).ipc);
        assert!(
            d.as_millis_f64() > 16.6,
            "little@min too fast: {}",
            d.as_millis_f64()
        );
    }

    #[test]
    fn surge_multiplier_applies_periodically() {
        let m = FrameCostModel {
            surge_every: 8,
            surge_factor: 3.0,
            ..FrameCostModel::default()
        };
        assert_eq!(m.surge_multiplier(0), 1.0);
        assert_eq!(m.surge_multiplier(7), 1.0);
        assert_eq!(m.surge_multiplier(8), 3.0);
        assert_eq!(m.surge_multiplier(16), 3.0);
        let normal = m.frame_work(100, 7);
        let surged = m.frame_work(100, 8);
        assert!(surged.cycles > normal.cycles * 2.5);
    }

    #[test]
    fn callback_work_combines_components() {
        let m = FrameCostModel::default();
        let w = m.callback_work(1_000, 5.0e6, 2.0);
        assert_eq!(w.cycles, 1_000.0 * m.cycles_per_op + 5.0e6);
        assert!((w.independent_ns - (2.0 + m.input_ipc_ms) * 1e6).abs() < 1.0);
    }

    #[test]
    fn all_dirty_layout_matches_full_stage_price() {
        let m = FrameCostModel::default();
        assert_eq!(m.layout_work(70, 0), m.stage_work(Stage::Layout, 70, 0));
        assert_eq!(m.layout_work(0, 0).cycles, 0.0);
        assert!(m.layout_work(5, 0).cycles < m.layout_work(50, 0).cycles);
    }

    #[test]
    fn paint_scales_with_damaged_fraction_and_clamps() {
        let m = FrameCostModel::default();
        // Full damage (and the empty-list edge) price like the flat
        // pre-incremental charge.
        assert_eq!(m.paint_work(40, 40, 0), m.stage_work(Stage::Paint, 40, 0));
        assert_eq!(m.paint_work(0, 0, 0), m.stage_work(Stage::Paint, 0, 0));
        // Half the items damaged → half the cycles.
        assert_eq!(m.paint_work(20, 40, 0).cycles, m.paint_cycles / 2.0);
        // A produced frame with zero DOM-level damage means the change
        // is invisible to the display-list diff (canvas drawing) — the
        // whole layer repaints at full price.
        assert_eq!(m.paint_work(0, 40, 0).cycles, m.paint_cycles);
        // Removals can exceed the list size; the fraction clamps at 1.
        assert_eq!(m.paint_work(90, 40, 0).cycles, m.paint_cycles);
    }

    #[test]
    fn incremental_prices_honour_surges() {
        let m = FrameCostModel {
            surge_every: 4,
            surge_factor: 2.0,
            ..FrameCostModel::default()
        };
        assert_eq!(
            m.layout_work(10, 4).cycles,
            m.layout_work(10, 3).cycles * 2.0
        );
        assert_eq!(
            m.paint_work(5, 10, 4).cycles,
            m.paint_work(5, 10, 3).cycles * 2.0
        );
    }

    #[test]
    fn stage_sum_equals_frame_work() {
        let m = FrameCostModel::default();
        let total = m.frame_work(50, 0);
        let sum = Stage::ALL.iter().fold(WorkUnit::default(), |acc, &s| {
            acc.plus(&m.stage_work(s, 50, 0))
        });
        assert_eq!(total, sum);
    }
}
