//! Input events and interaction traces.

use greenweb_acmp::SimTime;
use greenweb_dom::EventType;
use std::fmt;

/// Unique identifier of one user input — the `UID` of the paper's Fig. 8
/// tracking algorithm. Assigned by the browser at input arrival and
/// propagated as metadata through the frame pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputId(pub u64);

impl fmt::Display for InputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "input#{}", self.0)
    }
}

/// How a trace event names its target element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TargetSpec {
    /// An element looked up by its `id` attribute.
    Id(String),
    /// The document root (page-level events such as `load` / `scroll`).
    Root,
}

impl fmt::Display for TargetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetSpec::Id(id) => write!(f, "#{id}"),
            TargetSpec::Root => write!(f, ":root"),
        }
    }
}

/// One user input in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Arrival time.
    pub at: SimTime,
    /// DOM event type.
    pub event: EventType,
    /// Target element.
    pub target: TargetSpec,
}

/// A deterministic sequence of user inputs (the simulator's equivalent of
/// the paper's Mosaic record-and-replay traces).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Inputs sorted by arrival time.
    pub events: Vec<TraceEvent>,
    /// Simulation end time (the measurement window).
    pub end: SimTime,
}

impl Trace {
    /// Starts building a trace.
    pub fn builder() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no inputs.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Builder for [`Trace`]. Events may be added out of order; `build` sorts
/// them and extends the end time to cover the last event.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    events: Vec<TraceEvent>,
    end: SimTime,
}

impl TraceBuilder {
    /// Adds an event at `at_ms` milliseconds.
    pub fn event(mut self, at_ms: f64, event: EventType, target: TargetSpec) -> Self {
        self.events.push(TraceEvent {
            at: SimTime::from_millis_f64(at_ms),
            event,
            target,
        });
        self
    }

    /// Adds a `click` on element `id`.
    pub fn click_id(self, at_ms: f64, id: &str) -> Self {
        self.event(at_ms, EventType::Click, TargetSpec::Id(id.into()))
    }

    /// Adds a `load` on the document root.
    pub fn load(self, at_ms: f64) -> Self {
        self.event(at_ms, EventType::Load, TargetSpec::Root)
    }

    /// Adds a `touchstart` on element `id`.
    pub fn touchstart_id(self, at_ms: f64, id: &str) -> Self {
        self.event(at_ms, EventType::TouchStart, TargetSpec::Id(id.into()))
    }

    /// Adds a run of `touchmove` events on element `id`, one every
    /// `period_ms`, starting at `at_ms`.
    pub fn touchmove_run(mut self, at_ms: f64, id: &str, count: usize, period_ms: f64) -> Self {
        for i in 0..count {
            self = self.event(
                at_ms + i as f64 * period_ms,
                EventType::TouchMove,
                TargetSpec::Id(id.into()),
            );
        }
        self
    }

    /// Sets the measurement window end, in milliseconds.
    pub fn end_ms(mut self, end_ms: f64) -> Self {
        self.end = SimTime::from_millis_f64(end_ms);
        self
    }

    /// Finalizes the trace.
    pub fn build(mut self) -> Trace {
        self.events.sort_by_key(|e| e.at);
        let end = match self.events.last() {
            Some(last) => self
                .end
                .max(last.at + greenweb_acmp::Duration::from_millis(100)),
            None => self.end,
        };
        Trace {
            events: self.events,
            end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_events() {
        let trace = Trace::builder()
            .click_id(500.0, "b")
            .click_id(100.0, "a")
            .build();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events[0].target, TargetSpec::Id("a".into()));
        assert!(trace.events[0].at < trace.events[1].at);
    }

    #[test]
    fn end_covers_last_event() {
        let trace = Trace::builder().click_id(1000.0, "a").end_ms(10.0).build();
        assert!(trace.end >= SimTime::from_millis(1000));
    }

    #[test]
    fn touchmove_run_spacing() {
        let trace = Trace::builder().touchmove_run(0.0, "x", 5, 16.0).build();
        assert_eq!(trace.len(), 5);
        let delta = trace.events[1].at.since(trace.events[0].at);
        assert_eq!(delta.as_millis_f64(), 16.0);
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::builder().end_ms(50.0).build();
        assert!(trace.is_empty());
        assert_eq!(trace.end, SimTime::from_millis(50));
    }
}
