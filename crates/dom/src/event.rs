//! DOM event model.
//!
//! The paper's LTM interaction model (Sec. 3.1) maps user interactions onto
//! a small vocabulary of mobile DOM events: `click`, `scroll`,
//! `touchstart`, `touchend`, and `touchmove`, plus the loading (`load`)
//! pseudo-event. The engine additionally uses `transitionend` /
//! `animationend` (needed by AUTOGREEN's detection, Sec. 5) and
//! `requestAnimationFrame` ticks, which are not DOM events and live in the
//! engine instead.
//!
//! [`ListenerSet`] stores callbacks generically: the engine instantiates it
//! with script function handles, the tests with plain integers.

use crate::document::{Document, NodeId};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// The DOM event vocabulary understood by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventType {
    /// Finger tap translated to a click (LTM: **T**).
    Click,
    /// Scroll produced by a finger move (LTM: **M**).
    Scroll,
    /// Finger makes contact (LTM: **T**/**M** prefix).
    TouchStart,
    /// Finger lifts (LTM: **T** suffix).
    TouchEnd,
    /// Finger drags across the display (LTM: **M**).
    TouchMove,
    /// Page load (LTM: **L**); fired once on the document root.
    Load,
    /// A CSS transition finished (used by AUTOGREEN's QoS-type detection).
    TransitionEnd,
    /// A CSS keyframe animation finished (ditto).
    AnimationEnd,
}

impl EventType {
    /// All event types, in a stable order.
    pub const ALL: [EventType; 8] = [
        EventType::Click,
        EventType::Scroll,
        EventType::TouchStart,
        EventType::TouchEnd,
        EventType::TouchMove,
        EventType::Load,
        EventType::TransitionEnd,
        EventType::AnimationEnd,
    ];

    /// The canonical DOM name (`click`, `touchstart`, …).
    pub fn name(self) -> &'static str {
        match self {
            EventType::Click => "click",
            EventType::Scroll => "scroll",
            EventType::TouchStart => "touchstart",
            EventType::TouchEnd => "touchend",
            EventType::TouchMove => "touchmove",
            EventType::Load => "load",
            EventType::TransitionEnd => "transitionend",
            EventType::AnimationEnd => "animationend",
        }
    }

    /// Whether this event can be triggered directly by one of the paper's
    /// LTM user interactions (loading, tapping, moving). `transitionend`
    /// and `animationend` are browser-generated, not user-generated.
    pub fn is_user_interaction(self) -> bool {
        !matches!(self, EventType::TransitionEnd | EventType::AnimationEnd)
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown event name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEventTypeError {
    name: String,
}

impl fmt::Display for ParseEventTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown event type `{}`", self.name)
    }
}

impl std::error::Error for ParseEventTypeError {}

impl FromStr for EventType {
    type Err = ParseEventTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        EventType::ALL
            .into_iter()
            .find(|e| e.name() == lower)
            .ok_or(ParseEventTypeError { name: s.into() })
    }
}

/// Propagation phase during dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventPhase {
    /// Root-to-target, exclusive of the target.
    Capture,
    /// At the target node.
    AtTarget,
    /// Target-to-root, exclusive of the target.
    Bubble,
}

/// A concrete event instance aimed at a target node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The event type.
    pub event_type: EventType,
    /// The node the event targets.
    pub target: NodeId,
}

impl Event {
    /// Creates an event of `event_type` targeting `target`.
    pub fn new(event_type: EventType, target: NodeId) -> Self {
        Event { event_type, target }
    }

    /// Computes the full propagation path for this event: capture from the
    /// root down to (excluding) the target, the target itself, then bubble
    /// back to the root. Scroll and load do not bubble per the DOM spec;
    /// for those the path is capture + target only.
    pub fn propagation_path(&self, doc: &Document) -> Vec<(NodeId, EventPhase)> {
        let mut ancestors: Vec<NodeId> = doc.ancestors(self.target).collect();
        ancestors.reverse(); // root first
        let mut path = Vec::with_capacity(ancestors.len() * 2 + 1);
        for &node in &ancestors {
            path.push((node, EventPhase::Capture));
        }
        path.push((self.target, EventPhase::AtTarget));
        let bubbles = !matches!(self.event_type, EventType::Scroll | EventType::Load);
        if bubbles {
            for &node in ancestors.iter().rev() {
                path.push((node, EventPhase::Bubble));
            }
        }
        path
    }
}

/// Registration of event listeners, generic over the callback handle type.
///
/// The engine uses script function handles; AUTOGREEN wraps them during its
/// instrumentation phase (Sec. 5) by re-registering decorated callbacks.
#[derive(Debug, Clone)]
pub struct ListenerSet<T> {
    listeners: HashMap<(NodeId, EventType), Vec<T>>,
}

impl<T> ListenerSet<T> {
    /// Creates an empty listener set.
    pub fn new() -> Self {
        ListenerSet {
            listeners: HashMap::new(),
        }
    }

    /// Registers `callback` for `event_type` on `node`.
    pub fn add(&mut self, node: NodeId, event_type: EventType, callback: T) {
        self.listeners
            .entry((node, event_type))
            .or_default()
            .push(callback);
    }

    /// Removes all listeners for `event_type` on `node`, returning them.
    pub fn remove_all(&mut self, node: NodeId, event_type: EventType) -> Vec<T> {
        self.listeners
            .remove(&(node, event_type))
            .unwrap_or_default()
    }

    /// The listeners registered for `event_type` on `node` in registration
    /// order.
    pub fn get(&self, node: NodeId, event_type: EventType) -> &[T] {
        self.listeners
            .get(&(node, event_type))
            .map_or(&[], Vec::as_slice)
    }

    /// Whether any listener exists for `event_type` on `node`.
    pub fn has(&self, node: NodeId, event_type: EventType) -> bool {
        !self.get(node, event_type).is_empty()
    }

    /// Iterates over every `(node, event type)` pair with at least one
    /// listener, in unspecified order.
    pub fn targets(&self) -> impl Iterator<Item = (NodeId, EventType)> + '_ {
        self.listeners
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&k, _)| k)
    }

    /// Total number of registered listeners.
    pub fn len(&self) -> usize {
        self.listeners.values().map(Vec::len).sum()
    }

    /// Whether no listener is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects the callbacks that `event` would invoke, in dispatch order
    /// (capture from root, target, bubble to root).
    pub fn dispatch_order(&self, doc: &Document, event: &Event) -> Vec<&T>
    where
        T: Sized,
    {
        let mut out = Vec::new();
        for (node, _phase) in event.propagation_path(doc) {
            // Like real browsers we do not distinguish capture/bubble
            // registration; each listener fires once, at the earliest
            // phase its node appears in. Nodes appear twice (capture +
            // bubble), so only take the capture/target occurrence.
            if _phase == EventPhase::Bubble {
                continue;
            }
            out.extend(self.get(node, event.event_type).iter());
        }
        out
    }

    /// Like [`ListenerSet::dispatch_order`], but each callback is paired
    /// with the node it was registered on and its position in that node's
    /// listener list — the key the engine's static effect-summary table
    /// uses (the same callback value may be registered on many nodes).
    pub fn dispatch_entries(&self, doc: &Document, event: &Event) -> Vec<(NodeId, usize, &T)>
    where
        T: Sized,
    {
        let mut out = Vec::new();
        for (node, phase) in event.propagation_path(doc) {
            if phase == EventPhase::Bubble {
                continue;
            }
            for (index, callback) in self.get(node, event.event_type).iter().enumerate() {
                out.push((node, index, callback));
            }
        }
        out
    }
}

impl<T> Default for ListenerSet<T> {
    fn default() -> Self {
        ListenerSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_html;

    #[test]
    fn event_names_round_trip() {
        for ty in EventType::ALL {
            assert_eq!(ty.name().parse::<EventType>().unwrap(), ty);
        }
        assert!("mouseover".parse::<EventType>().is_err());
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(
            "TouchStart".parse::<EventType>().unwrap(),
            EventType::TouchStart
        );
    }

    #[test]
    fn user_interaction_classification() {
        assert!(EventType::Click.is_user_interaction());
        assert!(EventType::Load.is_user_interaction());
        assert!(!EventType::TransitionEnd.is_user_interaction());
        assert!(!EventType::AnimationEnd.is_user_interaction());
    }

    #[test]
    fn propagation_path_captures_then_bubbles() {
        let doc = parse_html("<div id='a'><p id='b'></p></div>").unwrap();
        let b = doc.element_by_id("b").unwrap();
        let a = doc.element_by_id("a").unwrap();
        let event = Event::new(EventType::Click, b);
        let path = event.propagation_path(&doc);
        assert_eq!(path.first(), Some(&(doc.root(), EventPhase::Capture)));
        assert!(path.contains(&(a, EventPhase::Capture)));
        assert!(path.contains(&(b, EventPhase::AtTarget)));
        assert_eq!(path.last(), Some(&(doc.root(), EventPhase::Bubble)));
    }

    #[test]
    fn scroll_does_not_bubble() {
        let doc = parse_html("<div id='a'><p id='b'></p></div>").unwrap();
        let b = doc.element_by_id("b").unwrap();
        let path = Event::new(EventType::Scroll, b).propagation_path(&doc);
        assert_eq!(path.last(), Some(&(b, EventPhase::AtTarget)));
    }

    #[test]
    fn listener_set_add_get_remove() {
        let doc = parse_html("<div id='a'></div>").unwrap();
        let a = doc.element_by_id("a").unwrap();
        let mut set: ListenerSet<u32> = ListenerSet::new();
        assert!(set.is_empty());
        set.add(a, EventType::Click, 1);
        set.add(a, EventType::Click, 2);
        assert_eq!(set.get(a, EventType::Click), &[1, 2]);
        assert!(set.has(a, EventType::Click));
        assert!(!set.has(a, EventType::Scroll));
        assert_eq!(set.len(), 2);
        assert_eq!(set.remove_all(a, EventType::Click), vec![1, 2]);
        assert!(set.is_empty());
    }

    #[test]
    fn dispatch_order_outer_before_inner_then_target() {
        let doc = parse_html("<div id='a'><p id='b'></p></div>").unwrap();
        let a = doc.element_by_id("a").unwrap();
        let b = doc.element_by_id("b").unwrap();
        let mut set: ListenerSet<&str> = ListenerSet::new();
        set.add(a, EventType::Click, "outer");
        set.add(b, EventType::Click, "inner");
        let order = set.dispatch_order(&doc, &Event::new(EventType::Click, b));
        assert_eq!(order, vec![&"outer", &"inner"]);
    }

    #[test]
    fn dispatch_entries_carry_registration_node_and_index() {
        let doc = parse_html("<div id='a'><p id='b'></p></div>").unwrap();
        let a = doc.element_by_id("a").unwrap();
        let b = doc.element_by_id("b").unwrap();
        let mut set: ListenerSet<&str> = ListenerSet::new();
        set.add(a, EventType::Click, "outer0");
        set.add(a, EventType::Click, "outer1");
        set.add(b, EventType::Click, "inner");
        let entries = set.dispatch_entries(&doc, &Event::new(EventType::Click, b));
        assert_eq!(
            entries,
            vec![(a, 0, &"outer0"), (a, 1, &"outer1"), (b, 0, &"inner")]
        );
    }

    #[test]
    fn dispatch_does_not_double_fire_on_bubble() {
        let doc = parse_html("<div id='a'><p id='b'></p></div>").unwrap();
        let a = doc.element_by_id("a").unwrap();
        let b = doc.element_by_id("b").unwrap();
        let mut set: ListenerSet<&str> = ListenerSet::new();
        set.add(a, EventType::Click, "outer");
        let order = set.dispatch_order(&doc, &Event::new(EventType::Click, b));
        assert_eq!(order.len(), 1);
    }
}
