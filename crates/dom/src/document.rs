//! Arena-backed document tree.
//!
//! Nodes are stored in a `Vec` and addressed by [`NodeId`]; sibling/child
//! relationships are intrusive indices. Removal unlinks a subtree but does
//! not reclaim slots (documents in the simulator are short-lived), which
//! keeps every `NodeId` stable for the lifetime of the [`Document`] — a
//! property the engine's dirty-tracking and the CSS style cache rely on.

use crate::node::{ElementData, NodeKind};
use std::fmt;

/// A stable handle to a node within one [`Document`].
///
/// `NodeId`s are never reused; a detached node keeps its id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Index into the document arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeSlot {
    kind: NodeKind,
    parent: Option<NodeId>,
    first_child: Option<NodeId>,
    last_child: Option<NodeId>,
    prev_sibling: Option<NodeId>,
    next_sibling: Option<NodeId>,
}

impl NodeSlot {
    fn new(kind: NodeKind) -> Self {
        NodeSlot {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
        }
    }
}

/// A DOM document: an arena of nodes rooted at [`Document::root`].
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeSlot>,
    root: NodeId,
}

impl Document {
    /// Creates an empty document containing only the root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeSlot::new(NodeKind::Document)],
            root: NodeId(0),
        }
    }

    /// The document root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes ever allocated (including detached ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document contains only the root node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    fn slot(&self, id: NodeId) -> &NodeSlot {
        &self.nodes[id.index()]
    }

    fn slot_mut(&mut self, id: NodeId) -> &mut NodeSlot {
        &mut self.nodes[id.index()]
    }

    /// Allocates a detached node of the given kind.
    pub fn create_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot::new(kind));
        id
    }

    /// Allocates a detached element node with tag `tag`.
    pub fn create_element(&mut self, tag: impl Into<String>) -> NodeId {
        self.create_node(NodeKind::Element(ElementData::new(tag)))
    }

    /// Allocates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.create_node(NodeKind::Text(text.into()))
    }

    /// Recovers the [`NodeId`] for a raw arena index, if in range. Used by
    /// embedders (the script host) that pass node handles across an
    /// untyped boundary.
    pub fn node_at(&self, index: usize) -> Option<NodeId> {
        if index < self.nodes.len() {
            Some(NodeId(index as u32))
        } else {
            None
        }
    }

    /// The node's kind.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.slot(id).kind
    }

    /// Mutable access to the node's kind.
    pub fn kind_mut(&mut self, id: NodeId) -> &mut NodeKind {
        &mut self.slot_mut(id).kind
    }

    /// The element payload, if `id` is an element.
    pub fn element(&self, id: NodeId) -> Option<&ElementData> {
        self.slot(id).kind.as_element()
    }

    /// Mutable element payload, if `id` is an element.
    pub fn element_mut(&mut self, id: NodeId) -> Option<&mut ElementData> {
        self.slot_mut(id).kind.as_element_mut()
    }

    /// The lowercase tag name, if `id` is an element.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        self.element(id).map(ElementData::tag)
    }

    /// Parent node, if attached.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.slot(id).parent
    }

    /// First child, if any.
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.slot(id).first_child
    }

    /// Last child, if any.
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.slot(id).last_child
    }

    /// Next sibling, if any.
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.slot(id).next_sibling
    }

    /// Previous sibling, if any.
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.slot(id).prev_sibling
    }

    /// Appends `child` as the last child of `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `child` is the root, is already attached, or if the append
    /// would create a cycle (`parent` inside `child`'s subtree).
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert_ne!(child, self.root, "cannot attach the document root");
        assert!(
            self.slot(child).parent.is_none(),
            "node is already attached; detach it first"
        );
        assert!(
            !self.is_ancestor_or_self(child, parent),
            "append would create a cycle"
        );
        let old_last = self.slot(parent).last_child;
        match old_last {
            Some(last) => {
                self.slot_mut(last).next_sibling = Some(child);
                self.slot_mut(child).prev_sibling = Some(last);
            }
            None => self.slot_mut(parent).first_child = Some(child),
        }
        self.slot_mut(parent).last_child = Some(child);
        self.slot_mut(child).parent = Some(parent);
    }

    /// Detaches `id` (and its subtree) from its parent. No-op if detached.
    pub fn detach(&mut self, id: NodeId) {
        let (parent, prev, next) = {
            let slot = self.slot(id);
            (slot.parent, slot.prev_sibling, slot.next_sibling)
        };
        let Some(parent) = parent else { return };
        match prev {
            Some(prev) => self.slot_mut(prev).next_sibling = next,
            None => self.slot_mut(parent).first_child = next,
        }
        match next {
            Some(next) => self.slot_mut(next).prev_sibling = prev,
            None => self.slot_mut(parent).last_child = prev,
        }
        let slot = self.slot_mut(id);
        slot.parent = None;
        slot.prev_sibling = None;
        slot.next_sibling = None;
    }

    /// Whether `ancestor` is `node` itself or one of its ancestors.
    pub fn is_ancestor_or_self(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(id) = cur {
            if id == ancestor {
                return true;
            }
            cur = self.parent(id);
        }
        false
    }

    /// Iterates over the children of `id`.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.first_child(id),
        }
    }

    /// Iterates over the ancestors of `id`, starting from its parent and
    /// ending at the root.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.parent(id),
        }
    }

    /// Depth-first pre-order traversal of the subtree rooted at `id`
    /// (including `id` itself).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// All element nodes in document order.
    pub fn elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants(self.root)
            .filter(|&id| self.element(id).is_some())
    }

    /// Finds the first element whose `id` attribute equals `id_value`.
    pub fn element_by_id(&self, id_value: &str) -> Option<NodeId> {
        self.elements()
            .find(|&id| self.element(id).and_then(ElementData::id) == Some(id_value))
    }

    /// All elements with the given lowercase tag name, in document order.
    pub fn elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        let tag = tag.to_ascii_lowercase();
        self.elements()
            .filter(|&id| self.tag_name(id) == Some(tag.as_str()))
            .collect()
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for node in self.descendants(id) {
            if let Some(text) = self.kind(node).as_text() {
                out.push_str(text);
            }
        }
        out
    }

    /// Depth of `id` below the root (the root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// Serializes the subtree rooted at `id` back to HTML-ish markup.
    pub fn serialize(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.serialize_into(id, &mut out);
        out
    }

    fn serialize_into(&self, id: NodeId, out: &mut String) {
        match self.kind(id) {
            NodeKind::Document => {
                for child in self.children(id) {
                    self.serialize_into(child, out);
                }
            }
            NodeKind::Element(el) => {
                out.push_str(&el.to_string());
                for child in self.children(id) {
                    self.serialize_into(child, out);
                }
                out.push_str(&format!("</{}>", el.tag()));
            }
            NodeKind::Text(text) => out.push_str(text),
            NodeKind::Comment(text) => out.push_str(&format!("<!--{text}-->")),
        }
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

/// Iterator over the children of a node. See [`Document::children`].
#[derive(Debug)]
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.next_sibling(id);
        Some(id)
    }
}

/// Iterator over the ancestors of a node. See [`Document::ancestors`].
#[derive(Debug)]
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.parent(id);
        Some(id)
    }
}

/// Pre-order depth-first iterator. See [`Document::descendants`].
#[derive(Debug)]
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children in reverse so the leftmost child pops first.
        let children: Vec<NodeId> = self.doc.children(id).collect();
        for child in children.into_iter().rev() {
            self.stack.push(child);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let div = doc.create_element("div");
        let p = doc.create_element("p");
        let text = doc.create_text("hello");
        doc.append_child(doc.root(), div);
        doc.append_child(div, p);
        doc.append_child(p, text);
        (doc, div, p, text)
    }

    #[test]
    fn append_links_children_in_order() {
        let mut doc = Document::new();
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        let c = doc.create_element("c");
        let root = doc.root();
        doc.append_child(root, a);
        doc.append_child(root, b);
        doc.append_child(root, c);
        let kids: Vec<_> = doc.children(root).collect();
        assert_eq!(kids, vec![a, b, c]);
        assert_eq!(doc.prev_sibling(b), Some(a));
        assert_eq!(doc.next_sibling(b), Some(c));
        assert_eq!(doc.first_child(root), Some(a));
        assert_eq!(doc.last_child(root), Some(c));
    }

    #[test]
    fn detach_middle_child_relinks_siblings() {
        let mut doc = Document::new();
        let root = doc.root();
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        let c = doc.create_element("c");
        doc.append_child(root, a);
        doc.append_child(root, b);
        doc.append_child(root, c);
        doc.detach(b);
        let kids: Vec<_> = doc.children(root).collect();
        assert_eq!(kids, vec![a, c]);
        assert_eq!(doc.parent(b), None);
        assert_eq!(doc.next_sibling(a), Some(c));
        assert_eq!(doc.prev_sibling(c), Some(a));
    }

    #[test]
    fn detach_is_idempotent() {
        let (mut doc, div, ..) = sample();
        doc.detach(div);
        doc.detach(div);
        assert_eq!(doc.parent(div), None);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn append_rejects_cycles() {
        let (mut doc, div, p, _) = sample();
        doc.detach(div);
        // div is an ancestor of p; attaching div under p would be a cycle.
        doc.append_child(p, div);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn append_rejects_attached_nodes() {
        let (mut doc, div, _, _) = sample();
        let root = doc.root();
        doc.append_child(root, div);
    }

    #[test]
    fn ancestors_walks_to_root() {
        let (doc, div, p, text) = sample();
        let chain: Vec<_> = doc.ancestors(text).collect();
        assert_eq!(chain, vec![p, div, doc.root()]);
    }

    #[test]
    fn descendants_is_preorder() {
        let (doc, div, p, text) = sample();
        let order: Vec<_> = doc.descendants(doc.root()).collect();
        assert_eq!(order, vec![doc.root(), div, p, text]);
    }

    #[test]
    fn element_by_id_finds_element() {
        let (mut doc, _, p, _) = sample();
        doc.element_mut(p).unwrap().set_attribute("id", "para");
        assert_eq!(doc.element_by_id("para"), Some(p));
        assert_eq!(doc.element_by_id("missing"), None);
    }

    #[test]
    fn text_content_concatenates() {
        let (mut doc, div, ..) = sample();
        let more = doc.create_text(" world");
        doc.append_child(div, more);
        assert_eq!(doc.text_content(div), "hello world");
    }

    #[test]
    fn depth_counts_edges() {
        let (doc, div, p, text) = sample();
        assert_eq!(doc.depth(doc.root()), 0);
        assert_eq!(doc.depth(div), 1);
        assert_eq!(doc.depth(p), 2);
        assert_eq!(doc.depth(text), 3);
    }

    #[test]
    fn serialize_round_trips_structure() {
        let (mut doc, div, ..) = sample();
        doc.element_mut(div).unwrap().set_attribute("id", "d");
        assert_eq!(
            doc.serialize(doc.root()),
            "<div id=\"d\"><p>hello</p></div>"
        );
    }

    #[test]
    fn elements_by_tag_is_case_insensitive() {
        let (doc, div, ..) = sample();
        assert_eq!(doc.elements_by_tag("DIV"), vec![div]);
    }
}
