//! A small HTML parser.
//!
//! Supports the subset of HTML used by the GreenWeb workloads: nested
//! elements, single/double/unquoted attributes, valueless attributes,
//! void elements (`<br>`, `<img>`, …), self-closing syntax, comments,
//! doctype declarations, and raw-text elements (`<script>`, `<style>`),
//! whose contents are kept verbatim as a single text node.
//!
//! Recovery follows the pragmatic browser tradition: a stray end tag is
//! ignored; an unterminated element is closed at end of input.

use crate::document::{Document, NodeId};
use crate::node::NodeKind;
use std::fmt;

/// Error produced by [`parse_html`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtmlError {
    message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl HtmlError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        HtmlError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for HtmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "html parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for HtmlError {}

/// Elements that never have children and need no closing tag.
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Elements whose content is raw text up to the matching end tag.
const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style"];

/// Parses `input` into a [`Document`].
///
/// # Errors
///
/// Returns [`HtmlError`] on malformed markup that cannot be recovered
/// from, such as an unterminated tag or attribute string.
///
/// ```
/// let doc = greenweb_dom::parse_html("<ul><li>a</li><li>b</li></ul>").unwrap();
/// assert_eq!(doc.elements_by_tag("li").len(), 2);
/// ```
pub fn parse_html(input: &str) -> Result<Document, HtmlError> {
    Parser::new(input).parse()
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    doc: Document,
    stack: Vec<NodeId>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let doc = Document::new();
        let root = doc.root();
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            doc,
            stack: vec![root],
        }
    }

    fn parse(mut self) -> Result<Document, HtmlError> {
        while self.pos < self.bytes.len() {
            if self.peek() == Some(b'<') {
                self.parse_tag()?;
            } else {
                self.parse_text();
            }
        }
        Ok(self.doc)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn current_parent(&self) -> NodeId {
        *self.stack.last().expect("stack never empties below root")
    }

    fn parse_text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let text = &self.input[start..self.pos];
        if !text.trim().is_empty() {
            let node = self.doc.create_text(text);
            let parent = self.current_parent();
            self.doc.append_child(parent, node);
        }
    }

    fn parse_tag(&mut self) -> Result<(), HtmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        if self.input[self.pos..].starts_with("<!--") {
            return self.parse_comment();
        }
        if self.input[self.pos..].starts_with("<!") {
            return self.skip_doctype();
        }
        if self.peek_at(1) == Some(b'/') {
            return self.parse_end_tag();
        }
        self.parse_start_tag()
    }

    fn parse_comment(&mut self) -> Result<(), HtmlError> {
        let start = self.pos;
        self.pos += 4; // <!--
        match self.input[self.pos..].find("-->") {
            Some(end) => {
                let text = &self.input[self.pos..self.pos + end];
                let node = self.doc.create_node(NodeKind::Comment(text.to_string()));
                let parent = self.current_parent();
                self.doc.append_child(parent, node);
                self.pos += end + 3;
                Ok(())
            }
            None => Err(HtmlError::new("unterminated comment", start)),
        }
    }

    fn skip_doctype(&mut self) -> Result<(), HtmlError> {
        let start = self.pos;
        match self.input[self.pos..].find('>') {
            Some(end) => {
                self.pos += end + 1;
                Ok(())
            }
            None => Err(HtmlError::new("unterminated doctype", start)),
        }
    }

    fn parse_end_tag(&mut self) -> Result<(), HtmlError> {
        let start = self.pos;
        self.pos += 2; // </
        let name = self.read_name();
        if name.is_empty() {
            return Err(HtmlError::new("missing end tag name", start));
        }
        self.skip_whitespace();
        if self.peek() != Some(b'>') {
            return Err(HtmlError::new("unterminated end tag", start));
        }
        self.pos += 1;
        let name = name.to_ascii_lowercase();
        // Pop to the matching open element; ignore a stray end tag.
        if let Some(idx) = self
            .stack
            .iter()
            .rposition(|&id| self.doc.tag_name(id) == Some(name.as_str()))
        {
            self.stack.truncate(idx);
        }
        Ok(())
    }

    fn parse_start_tag(&mut self) -> Result<(), HtmlError> {
        let start = self.pos;
        self.pos += 1; // <
        let name = self.read_name();
        if name.is_empty() {
            // Treat a lone `<` as text, like browsers do.
            let node = self.doc.create_text("<");
            let parent = self.current_parent();
            self.doc.append_child(parent, node);
            return Ok(());
        }
        let element = self.doc.create_element(&name);
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') if self.peek_at(1) == Some(b'>') => {
                    self.pos += 2;
                    let parent = self.current_parent();
                    self.doc.append_child(parent, element);
                    return Ok(());
                }
                Some(_) => self.parse_attribute(element)?,
                None => return Err(HtmlError::new("unterminated start tag", start)),
            }
        }
        let parent = self.current_parent();
        self.doc.append_child(parent, element);
        let tag = name.to_ascii_lowercase();
        if VOID_ELEMENTS.contains(&tag.as_str()) {
            return Ok(());
        }
        if RAW_TEXT_ELEMENTS.contains(&tag.as_str()) {
            return self.parse_raw_text(element, &tag);
        }
        self.stack.push(element);
        Ok(())
    }

    fn parse_raw_text(&mut self, element: NodeId, tag: &str) -> Result<(), HtmlError> {
        let close = format!("</{tag}");
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .position(|(i, _)| rest[i..].to_ascii_lowercase().starts_with(&close));
        // `position` above is O(n²) in the worst case but raw-text bodies in
        // the workloads are small; find a cheaper candidate first.
        let end = match end {
            Some(_) => rest
                .to_ascii_lowercase()
                .find(&close)
                .expect("candidate exists"),
            None => {
                return Err(HtmlError::new(
                    format!("unterminated <{tag}> element"),
                    self.pos,
                ))
            }
        };
        let text = &rest[..end];
        if !text.is_empty() {
            let node = self.doc.create_text(text);
            self.doc.append_child(element, node);
        }
        self.pos += end + close.len();
        // Skip to the closing `>`.
        match self.input[self.pos..].find('>') {
            Some(gt) => {
                self.pos += gt + 1;
                Ok(())
            }
            None => Err(HtmlError::new(
                format!("unterminated </{tag}> tag"),
                self.pos,
            )),
        }
    }

    fn parse_attribute(&mut self, element: NodeId) -> Result<(), HtmlError> {
        let start = self.pos;
        let name = self.read_attr_name();
        if name.is_empty() {
            return Err(HtmlError::new("expected attribute name", start));
        }
        self.skip_whitespace();
        let value = if self.peek() == Some(b'=') {
            self.pos += 1;
            self.skip_whitespace();
            self.read_attr_value()?
        } else {
            String::new()
        };
        self.doc
            .element_mut(element)
            .expect("just-created element")
            .set_attribute(name, value);
        Ok(())
    }

    fn read_attr_value(&mut self) -> Result<String, HtmlError> {
        match self.peek() {
            Some(quote @ (b'"' | b'\'')) => {
                let start = self.pos;
                self.pos += 1;
                let value_start = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(HtmlError::new("unterminated attribute value", start));
                }
                let value = self.input[value_start..self.pos].to_string();
                self.pos += 1;
                Ok(value)
            }
            _ => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_whitespace() || b == b'>' || b == b'/' {
                        break;
                    }
                    self.pos += 1;
                }
                Ok(self.input[start..self.pos].to_string())
            }
        }
    }

    fn read_name(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.input[start..self.pos].to_string()
    }

    fn read_attr_name(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.input[start..self.pos].to_string()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let doc = parse_html("<div><p>hello</p></div>").unwrap();
        let div = doc.elements_by_tag("div")[0];
        let p = doc.elements_by_tag("p")[0];
        assert_eq!(doc.parent(p), Some(div));
        assert_eq!(doc.text_content(p), "hello");
    }

    #[test]
    fn parses_attributes_all_quote_styles() {
        let doc = parse_html(r#"<input type="text" name='q' value=search disabled>"#).unwrap();
        let input = doc.elements_by_tag("input")[0];
        let el = doc.element(input).unwrap();
        assert_eq!(el.attribute("type"), Some("text"));
        assert_eq!(el.attribute("name"), Some("q"));
        assert_eq!(el.attribute("value"), Some("search"));
        assert_eq!(el.attribute("disabled"), Some(""));
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse_html("<div><br><p>x</p></div>").unwrap();
        let br = doc.elements_by_tag("br")[0];
        let p = doc.elements_by_tag("p")[0];
        assert_eq!(doc.children(br).count(), 0);
        assert_eq!(doc.parent(p), doc.parent(br));
    }

    #[test]
    fn self_closing_syntax() {
        let doc = parse_html("<div><span/><p>x</p></div>").unwrap();
        let span = doc.elements_by_tag("span")[0];
        assert_eq!(doc.children(span).count(), 0);
        let div = doc.elements_by_tag("div")[0];
        assert_eq!(doc.parent(doc.elements_by_tag("p")[0]), Some(div));
    }

    #[test]
    fn comments_preserved() {
        let doc = parse_html("<div><!-- note --></div>").unwrap();
        let div = doc.elements_by_tag("div")[0];
        let child = doc.first_child(div).unwrap();
        assert_eq!(doc.kind(child), &NodeKind::Comment(" note ".into()));
    }

    #[test]
    fn doctype_skipped() {
        let doc = parse_html("<!DOCTYPE html><p>x</p>").unwrap();
        assert_eq!(doc.elements_by_tag("p").len(), 1);
    }

    #[test]
    fn script_content_is_raw_text() {
        let doc = parse_html("<script>if (a < b) { f(); }</script>").unwrap();
        let script = doc.elements_by_tag("script")[0];
        assert_eq!(doc.text_content(script), "if (a < b) { f(); }");
    }

    #[test]
    fn style_content_is_raw_text() {
        let doc = parse_html("<style>div > p { color: red; }</style>").unwrap();
        let style = doc.elements_by_tag("style")[0];
        assert_eq!(doc.text_content(style), "div > p { color: red; }");
    }

    #[test]
    fn stray_end_tag_ignored() {
        let doc = parse_html("<div></span><p>x</p></div>").unwrap();
        let div = doc.elements_by_tag("div")[0];
        let p = doc.elements_by_tag("p")[0];
        assert_eq!(doc.parent(p), Some(div));
    }

    #[test]
    fn unterminated_element_closed_at_eof() {
        let doc = parse_html("<div><p>hi").unwrap();
        assert_eq!(doc.text_content(doc.root()), "hi");
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = parse_html("<!-- oops").unwrap_err();
        assert!(err.to_string().contains("comment"));
    }

    #[test]
    fn unterminated_attribute_errors() {
        assert!(parse_html("<div id='x").is_err());
    }

    #[test]
    fn unterminated_script_errors() {
        assert!(parse_html("<script>var x = 1;").is_err());
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse_html("<div>\n  <p>x</p>\n</div>").unwrap();
        let div = doc.elements_by_tag("div")[0];
        assert_eq!(doc.children(div).count(), 1);
    }

    #[test]
    fn serialize_round_trip() {
        let html = "<div id=\"a\"><p class=\"b c\">text</p></div>";
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.serialize(doc.root()), html);
    }

    #[test]
    fn case_insensitive_tags_match() {
        let doc = parse_html("<DIV><P>x</p></DIV>").unwrap();
        assert_eq!(doc.elements_by_tag("div").len(), 1);
        assert_eq!(doc.elements_by_tag("p").len(), 1);
    }
}
