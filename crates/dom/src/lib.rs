//! # greenweb-dom
//!
//! A small, self-contained Document Object Model used by the GreenWeb
//! browser simulator.
//!
//! The crate provides:
//!
//! * an arena-backed node tree ([`Document`], [`NodeId`]) with element,
//!   text, and comment nodes;
//! * an HTML parser ([`parse_html`]) supporting the subset of HTML needed
//!   by the GreenWeb workloads (elements, attributes, void elements,
//!   comments, doctype, text);
//! * the DOM event model ([`event`]): the mobile event vocabulary of the
//!   paper (`click`, `scroll`, `touchstart`, `touchend`, `touchmove`, …),
//!   listener registration, and capture/target/bubble propagation paths.
//!
//! The DOM is deliberately synchronous and single-threaded: the GreenWeb
//! engine simulates browser concurrency in virtual time rather than with
//! real threads, so the tree never needs interior mutability or locking.
//!
//! ```
//! use greenweb_dom::{parse_html, event::EventType};
//!
//! let doc = parse_html("<div id='intro' class='fancy'><p>hi</p></div>").unwrap();
//! let intro = doc.element_by_id("intro").unwrap();
//! assert_eq!(doc.tag_name(intro), Some("div"));
//! assert_eq!(EventType::Click.name(), "click");
//! ```

#![forbid(unsafe_code)]

pub mod document;
pub mod event;
pub mod html;
pub mod node;

pub use document::{Document, NodeId};
pub use event::{Event, EventPhase, EventType, ListenerSet};
pub use html::{parse_html, HtmlError};
pub use node::{class_atom, id_atom, tag_atom, Attribute, ElementData, NodeKind};
