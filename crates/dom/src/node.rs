//! Node payloads: element data, attributes, and node kinds.

use std::fmt;

/// 64-bit FNV-1a over `name` with a one-byte kind prefix, so the same
/// string used as a tag, an id, and a class yields three distinct atoms.
fn style_atom(kind: u8, name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in std::iter::once(kind).chain(name.bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// The style atom of a (lowercase) tag name.
///
/// Style atoms are stable 64-bit hashes shared between the DOM and the
/// CSS engine: ancestor Bloom filters insert the atoms of every element
/// on a node's ancestor chain, and selector indexes precompute the atoms
/// a combinator chain requires, so a filter miss rejects a candidate
/// selector without walking the tree.
pub fn tag_atom(name: &str) -> u64 {
    style_atom(b't', name)
}

/// The style atom of an `id` attribute value. See [`tag_atom`].
pub fn id_atom(name: &str) -> u64 {
    style_atom(b'#', name)
}

/// The style atom of a single class name. See [`tag_atom`].
pub fn class_atom(name: &str) -> u64 {
    style_atom(b'.', name)
}

/// A single `name="value"` attribute on an element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, always stored lowercase.
    pub name: String,
    /// Attribute value (empty for valueless attributes such as `disabled`).
    pub value: String,
}

impl Attribute {
    /// Creates an attribute, lowercasing the name.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            name: name.into().to_ascii_lowercase(),
            value: value.into(),
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}=\"{}\"", self.name, self.value)
    }
}

/// The payload of an element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementData {
    tag: String,
    attributes: Vec<Attribute>,
}

impl ElementData {
    /// Creates element data for `tag` (stored lowercase) with no attributes.
    pub fn new(tag: impl Into<String>) -> Self {
        ElementData {
            tag: tag.into().to_ascii_lowercase(),
            attributes: Vec::new(),
        }
    }

    /// The lowercase tag name (`div`, `p`, …).
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// All attributes in document order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Returns the value of attribute `name` (case-insensitive), if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Sets attribute `name` to `value`, replacing an existing attribute of
    /// the same name.
    pub fn set_attribute(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let attr = Attribute::new(name, value);
        match self.attributes.iter_mut().find(|a| a.name == attr.name) {
            Some(existing) => existing.value = attr.value,
            None => self.attributes.push(attr),
        }
    }

    /// Removes attribute `name`, returning its previous value.
    pub fn remove_attribute(&mut self, name: &str) -> Option<String> {
        let name = name.to_ascii_lowercase();
        let idx = self.attributes.iter().position(|a| a.name == name)?;
        Some(self.attributes.remove(idx).value)
    }

    /// The element's `id` attribute, if any.
    pub fn id(&self) -> Option<&str> {
        self.attribute("id")
    }

    /// Iterates over the whitespace-separated class list.
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.attribute("class")
            .unwrap_or("")
            .split_ascii_whitespace()
    }

    /// Whether the class list contains `class`.
    pub fn has_class(&self, class: &str) -> bool {
        self.classes().any(|c| c == class)
    }

    /// The style atoms this element contributes to descendants' ancestor
    /// Bloom filters: its tag atom, its id atom (if any), and one atom
    /// per class. See [`tag_atom`].
    pub fn style_atoms(&self) -> impl Iterator<Item = u64> + '_ {
        std::iter::once(tag_atom(self.tag()))
            .chain(self.id().map(id_atom))
            .chain(self.classes().map(class_atom))
    }
}

impl fmt::Display for ElementData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.tag)?;
        for attr in &self.attributes {
            write!(f, " {attr}")?;
        }
        write!(f, ">")
    }
}

/// What a node in the tree is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The document root. Exactly one per [`crate::Document`].
    Document,
    /// An element such as `<div>`.
    Element(ElementData),
    /// A text run.
    Text(String),
    /// A comment (`<!-- … -->`). Preserved so serialization round-trips.
    Comment(String),
}

impl NodeKind {
    /// Returns the element payload if this is an element node.
    pub fn as_element(&self) -> Option<&ElementData> {
        match self {
            NodeKind::Element(data) => Some(data),
            _ => None,
        }
    }

    /// Mutable variant of [`NodeKind::as_element`].
    pub fn as_element_mut(&mut self) -> Option<&mut ElementData> {
        match self {
            NodeKind::Element(data) => Some(data),
            _ => None,
        }
    }

    /// Returns the text content if this is a text node.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            NodeKind::Text(text) => Some(text),
            _ => None,
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Document => write!(f, "#document"),
            NodeKind::Element(data) => write!(f, "{data}"),
            NodeKind::Text(text) => write!(f, "{text:?}"),
            NodeKind::Comment(text) => write!(f, "<!--{text}-->"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_name_is_lowercased() {
        let attr = Attribute::new("ID", "intro");
        assert_eq!(attr.name, "id");
        assert_eq!(attr.value, "intro");
    }

    #[test]
    fn set_attribute_replaces_existing() {
        let mut el = ElementData::new("div");
        el.set_attribute("class", "a");
        el.set_attribute("CLASS", "b c");
        assert_eq!(el.attributes().len(), 1);
        assert_eq!(el.attribute("class"), Some("b c"));
        assert!(el.has_class("b"));
        assert!(el.has_class("c"));
        assert!(!el.has_class("a"));
    }

    #[test]
    fn remove_attribute_returns_value() {
        let mut el = ElementData::new("div");
        el.set_attribute("id", "x");
        assert_eq!(el.remove_attribute("id"), Some("x".to_string()));
        assert_eq!(el.remove_attribute("id"), None);
        assert_eq!(el.id(), None);
    }

    #[test]
    fn tag_is_lowercased() {
        assert_eq!(ElementData::new("DIV").tag(), "div");
    }

    #[test]
    fn display_round_trip_contains_attrs() {
        let mut el = ElementData::new("a");
        el.set_attribute("href", "#");
        assert_eq!(el.to_string(), "<a href=\"#\">");
    }

    #[test]
    fn style_atoms_distinguish_kinds() {
        // The same string as a tag, id, and class must hash differently,
        // or `#x` in a filter would satisfy a `.x` ancestor requirement.
        let atoms = [tag_atom("x"), id_atom("x"), class_atom("x")];
        assert_ne!(atoms[0], atoms[1]);
        assert_ne!(atoms[0], atoms[2]);
        assert_ne!(atoms[1], atoms[2]);
        // And the hash is a pure function of its input.
        assert_eq!(tag_atom("div"), tag_atom("div"));
    }

    #[test]
    fn element_style_atoms_cover_tag_id_classes() {
        let mut el = ElementData::new("div");
        el.set_attribute("id", "intro");
        el.set_attribute("class", "a b");
        let atoms: Vec<u64> = el.style_atoms().collect();
        assert_eq!(
            atoms,
            vec![
                tag_atom("div"),
                id_atom("intro"),
                class_atom("a"),
                class_atom("b")
            ]
        );
    }

    #[test]
    fn node_kind_accessors() {
        let el = NodeKind::Element(ElementData::new("p"));
        assert!(el.as_element().is_some());
        assert!(el.as_text().is_none());
        let text = NodeKind::Text("hi".into());
        assert_eq!(text.as_text(), Some("hi"));
        assert!(text.as_element().is_none());
    }
}
