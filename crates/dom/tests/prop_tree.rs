//! Property tests for the DOM tree: random operation sequences must
//! preserve the arena's structural invariants, and serialization must
//! round-trip through the parser.

use greenweb_det::prop::{check, Gen, DEFAULT_CASES};
use greenweb_dom::{parse_html, Document, NodeId, NodeKind};

#[derive(Debug, Clone)]
enum Op {
    CreateElement(u8),
    CreateText(u8),
    Append { parent: u8, child: u8 },
    Detach(u8),
}

fn gen_ops(g: &mut Gen) -> Vec<Op> {
    g.vec_of(40, |g| match g.usize_in(0, 4) {
        0 => Op::CreateElement(g.usize_in(0, 8) as u8),
        1 => Op::CreateText(g.usize_in(0, 8) as u8),
        2 => Op::Append {
            parent: g.usize_in(0, 256) as u8,
            child: g.usize_in(0, 256) as u8,
        },
        _ => Op::Detach(g.usize_in(0, 256) as u8),
    })
}

/// Applies ops defensively (skipping ones the API forbids) and returns
/// the document plus every allocated node.
fn apply(ops: &[Op]) -> (Document, Vec<NodeId>) {
    let mut doc = Document::new();
    let mut nodes = vec![doc.root()];
    for op in ops {
        match op {
            Op::CreateElement(tag) => {
                nodes.push(doc.create_element(format!("t{tag}")));
            }
            Op::CreateText(t) => {
                nodes.push(doc.create_text(format!("x{t}")));
            }
            Op::Append { parent, child } => {
                let parent = nodes[*parent as usize % nodes.len()];
                let child = nodes[*child as usize % nodes.len()];
                let child_is_root = child == doc.root();
                let attached = doc.parent(child).is_some();
                let cyclic = doc.is_ancestor_or_self(child, parent);
                let parent_is_text = doc.kind(parent).as_text().is_some();
                if !child_is_root && !attached && !cyclic && !parent_is_text {
                    doc.append_child(parent, child);
                }
            }
            Op::Detach(i) => {
                let node = nodes[*i as usize % nodes.len()];
                doc.detach(node);
            }
        }
    }
    (doc, nodes)
}

/// Parent/child links are mutually consistent after any op sequence.
#[test]
fn links_stay_consistent() {
    check("links_stay_consistent", DEFAULT_CASES, |g| {
        let (doc, nodes) = apply(&gen_ops(g));
        for &node in &nodes {
            for child in doc.children(node).collect::<Vec<_>>() {
                assert_eq!(doc.parent(child), Some(node));
            }
            if let Some(parent) = doc.parent(node) {
                assert!(
                    doc.children(parent).any(|c| c == node),
                    "{node} not among its parent's children"
                );
            }
            // Sibling chain is symmetric.
            if let Some(next) = doc.next_sibling(node) {
                assert_eq!(doc.prev_sibling(next), Some(node));
            }
            if let Some(prev) = doc.prev_sibling(node) {
                assert_eq!(doc.next_sibling(prev), Some(node));
            }
        }
    });
}

/// No node is reachable from the root twice, and ancestor chains
/// terminate (no cycles).
#[test]
fn no_cycles_no_duplicates() {
    check("no_cycles_no_duplicates", DEFAULT_CASES, |g| {
        let (doc, nodes) = apply(&gen_ops(g));
        let reachable: Vec<NodeId> = doc.descendants(doc.root()).collect();
        let mut sorted = reachable.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), reachable.len(), "duplicate reachable node");
        for &node in &nodes {
            assert!(doc.ancestors(node).count() <= nodes.len());
        }
    });
}

/// Depth equals the ancestor count for every attached node.
#[test]
fn depth_matches_ancestors() {
    check("depth_matches_ancestors", DEFAULT_CASES, |g| {
        let (doc, _) = apply(&gen_ops(g));
        for node in doc.descendants(doc.root()).collect::<Vec<_>>() {
            assert_eq!(doc.depth(node), doc.ancestors(node).count());
        }
    });
}

/// Serializing a random element tree and reparsing produces the same
/// markup (text nodes with whitespace-only content are excluded by
/// construction: `x{t}` is never whitespace).
#[test]
fn serialize_reparse_round_trip() {
    check("serialize_reparse_round_trip", DEFAULT_CASES, |g| {
        let (doc, _) = apply(&gen_ops(g));
        let html = doc.serialize(doc.root());
        let reparsed = parse_html(&html).unwrap();
        assert_eq!(reparsed.serialize(reparsed.root()), html);
    });
}

/// `elements()` yields exactly the reachable nodes whose kind is
/// Element.
#[test]
fn elements_iterator_agrees_with_kinds() {
    check("elements_iterator_agrees_with_kinds", DEFAULT_CASES, |g| {
        let (doc, _) = apply(&gen_ops(g));
        let from_iter: Vec<NodeId> = doc.elements().collect();
        let filtered: Vec<NodeId> = doc
            .descendants(doc.root())
            .filter(|&n| matches!(doc.kind(n), NodeKind::Element(_)))
            .collect();
        assert_eq!(from_iter, filtered);
    });
}
