//! GreenLint: static analysis of GreenWeb QoS annotations.
//!
//! The paper's AUTOGREEN annotator is purely profile-based — it only
//! judges targets it has observed dynamically — so dead, shadowed,
//! contradictory, or physically unsatisfiable annotations ship silently
//! and surface as runtime deadline misses. GreenLint catches them before
//! a single simulated frame runs, in four passes over a parsed
//! [`App`]:
//!
//! 1. **Annotation sanity** ([`passes::annotation_sanity`]) — dead
//!    selectors, cascade-shadowed rules, conflicting equal-specificity
//!    targets, malformed `on<event>-qos` values (GW01x).
//! 2. **Handler coverage** ([`passes::handler_coverage`]) — registered
//!    handlers with no reachable annotation, cross-checked against
//!    AUTOGREEN's static plan (GW02x).
//! 3. **Cost bounds** ([`cost::CostAnalyzer`]) — an abstract
//!    interpretation of each handler's bytecode yielding a lower-bound
//!    work estimate in the engine cost model's units (GW03x).
//! 4. **Platform feasibility** ([`passes::platform_feasibility`]) —
//!    bounds vs. the ACMP's peak configuration: targets that are
//!    guaranteed deadline misses (GW04x).
//! 5. **Effect bounds** ([`effects::EffectAnalyzer`]) — a second
//!    abstract interpretation of the same bytecode, this time computing
//!    a sound *upper* bound on everything each handler may do: inert
//!    annotated handlers (GW050), provable zero-delay timer chains
//!    (GW051), and structure mutation on high-frequency events (GW060).
//!    The summaries are also exported ([`infer_effect_summaries`]) for
//!    the engine, which uses them to downgrade style invalidation and
//!    to check `dynamic ⊆ static` containment at every callback return.
//!
//! Diagnostics carry stable `GW0xx` codes and render deterministically
//! as text or JSON, so golden files diff cleanly in CI.

#![forbid(unsafe_code)]

pub mod cost;
pub mod diag;
pub mod effects;
pub mod passes;

pub use cost::{CostAnalyzer, HandlerCost};
pub use diag::{diagnostic_json, json_escape, Area, Diagnostic, LintCode, Location, Severity};
pub use effects::EffectAnalyzer;
pub use passes::{describe_element, FeasibilityFinding, ListenerInfo};

use greenweb::lang::AnnotationTable;
use greenweb::AutoGreen;
use greenweb_acmp::{CoreType, PerfGovernor, Platform, WorkUnit};
use greenweb_css::parse_stylesheet_with_errors;
use greenweb_dom::{parse_html, EventType, NodeId};
use greenweb_engine::{
    App, Browser, BrowserError, EffectSummary, GovernorScheduler, HandlerSummary, Scheduler,
};
use greenweb_script::compiler::CompiledProgram;
use greenweb_script::{compile, parse_program, Program};
use std::collections::BTreeMap;

/// One setup script, parsed and compiled at most once. Both bytecode
/// passes (cost lower bounds, effect upper bounds) build their function
/// tables from the same units instead of re-parsing the sources.
pub(crate) struct ScriptUnit {
    /// Parsed AST; `None` when the script fails to parse (the front-end
    /// pass has already reported that).
    pub(crate) program: Option<Program>,
    /// Compiled bytecode; `None` when parsing or compilation fails.
    pub(crate) compiled: Option<CompiledProgram>,
}

/// Parses and compiles every setup script once.
pub(crate) fn parse_units(scripts: &[String]) -> Vec<ScriptUnit> {
    scripts
        .iter()
        .map(|source| {
            let program = parse_program(source).ok();
            let compiled = program.as_ref().and_then(|p| compile(p).ok());
            ScriptUnit { program, compiled }
        })
        .collect()
}

// The handler-compilation cache lives in `greenweb_script::handler` and
// is shared with the engine: the analysis passes below compile handlers
// through the cache owned by the `Browser` they load, so what GreenLint
// certifies is byte-for-byte the artifact the engine executes.
pub use greenweb_script::{CompiledHandler, HandlerCache};

/// The full result of analyzing one application.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// The analyzed app's name.
    pub app_name: String,
    /// Every finding, sorted by [`Diagnostic::sort_key`] (deterministic).
    pub diagnostics: Vec<Diagnostic>,
    /// The GW040 findings in structured form, for cross-validation.
    pub unsatisfiable: Vec<FeasibilityFinding>,
    /// The inferred per-listener effect summaries, in `(node, event,
    /// index)` order — ready to attach as `App::effect_summaries`.
    pub effect_summaries: Vec<HandlerSummary>,
}

impl AnalysisReport {
    /// Diagnostics of `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any error-severity diagnostic fired (the CI gate).
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Diagnostics with the given lint code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Renders the human-readable report: one line per diagnostic plus a
    /// summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} note(s)\n",
            self.app_name,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Note),
        ));
        out
    }

    /// Renders the deterministic JSON form (stable field order, sorted
    /// diagnostics; byte-identical across runs on the same app).
    pub fn render_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(diagnostic_json).collect();
        let unsat: Vec<String> = self
            .unsatisfiable
            .iter()
            .map(|f| {
                format!(
                    "{{\"element\":\"{}\",\"node_id\":{},\"event\":\"{}\",\"qos_type\":\"{}\",\
                     \"bound_ms\":{:.3},\"imperceptible_ms\":{:.3},\"usable_ms\":{:.3}}}",
                    json_escape(&f.element),
                    match &f.node_id {
                        Some(id) => format!("\"{}\"", json_escape(id)),
                        None => "null".to_string(),
                    },
                    f.event,
                    f.qos_type,
                    f.bound_ms,
                    f.imperceptible_ms,
                    f.usable_ms,
                )
            })
            .collect();
        format!(
            "{{\"app\":\"{}\",\"summary\":{{\"error\":{},\"warn\":{},\"note\":{}}},\
             \"diagnostics\":[{}],\"unsatisfiable\":[{}]}}",
            json_escape(&self.app_name),
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Note),
            diags.join(","),
            unsat.join(","),
        )
    }

    /// Renders the inferred effect-summary table as deterministic JSON
    /// (already in `(node, event, index)` order).
    pub fn render_effects_json(&self) -> String {
        let handlers: Vec<String> = self
            .effect_summaries
            .iter()
            .map(HandlerSummary::render_json)
            .collect();
        format!(
            "{{\"app\":\"{}\",\"handlers\":[{}]}}",
            json_escape(&self.app_name),
            handlers.join(","),
        )
    }
}

/// Infers the effect-summary table for every listener `app` registers,
/// ready to attach as `App::effect_summaries`. Empty when the app fails
/// to load (no listener ever fires, so nothing needs a summary).
pub fn infer_effect_summaries(app: &App) -> Vec<HandlerSummary> {
    let Ok(browser) = Browser::new(app, GovernorScheduler::new(PerfGovernor)) else {
        return Vec::new();
    };
    let units = parse_units(&app.scripts);
    // The browser pre-warmed its handler cache at load, so the analyzer
    // walks the very same compiled artifacts the engine would execute.
    effect_summaries_of(
        &browser,
        &EffectAnalyzer::from_units(&units),
        browser.handler_cache(),
    )
}

/// Summarizes every registered listener callback — all event types, in
/// the browser's deterministic `(node, event, index)` order. A callback
/// whose body cannot be compiled gets ⊤ (it may still run through the
/// tree-walking interpreter, so assuming nothing is the only sound
/// choice).
fn effect_summaries_of<S: Scheduler>(
    browser: &Browser<S>,
    analyzer: &EffectAnalyzer,
    cache: &HandlerCache,
) -> Vec<HandlerSummary> {
    let mut summaries = Vec::new();
    for (node, event) in browser.listener_targets() {
        for (index, callback) in browser.listener_callbacks(node, event).iter().enumerate() {
            let summary = match cache.compile_callback(callback) {
                Some(handler) => analyzer.analyze_compiled(&handler),
                None => EffectSummary::top(),
            };
            summaries.push(HandlerSummary {
                node,
                event,
                index,
                summary,
            });
        }
    }
    summaries
}

/// Runs all four passes over `app`.
pub fn analyze(app: &App) -> AnalysisReport {
    analyze_on(app, &Platform::odroid_xu_e())
}

/// Like [`analyze`], with an explicit target platform for the
/// feasibility pass.
pub fn analyze_on(app: &App, platform: &Platform) -> AnalysisReport {
    let mut report = AnalysisReport {
        app_name: app.name.clone(),
        ..AnalysisReport::default()
    };
    let out = &mut report.diagnostics;
    let css_source = app.css_source();

    // Front end: everything the loaders would trip over.
    let (sheet, css_errors) = parse_stylesheet_with_errors(&css_source);
    for e in &css_errors {
        out.push(Diagnostic::new(
            LintCode::CssRecovered,
            Location::new(Area::Css, "stylesheet"),
            format!("recovered from a stylesheet error: {e}"),
        ));
    }
    for (i, source) in app.scripts.iter().enumerate() {
        let result = parse_program(source).map(|p| compile(&p));
        let detail = match result {
            Err(e) => Some(e.to_string()),
            Ok(Err(e)) => Some(e.to_string()),
            Ok(Ok(_)) => None,
        };
        if let Some(detail) = detail {
            out.push(Diagnostic::new(
                LintCode::ScriptLoad,
                Location::new(Area::Script(i), format!("script {i}")),
                detail,
            ));
        }
    }
    let doc = match parse_html(&app.html) {
        Ok(doc) => doc,
        Err(e) => {
            out.push(Diagnostic::new(
                LintCode::HtmlParse,
                Location::new(Area::Html, "document"),
                e.to_string(),
            ));
            out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
            return report;
        }
    };

    // Pass 1: annotation sanity, on the lossy table (same recovery the
    // runtime applies, so analyzer and runtime agree on what survives).
    let (table, lang_errors) = AnnotationTable::from_stylesheet_lossy(&sheet);
    passes::annotation_sanity(&doc, &css_source, &table, &lang_errors, out);

    // Passes 2-5 need the loaded app (setup scripts register listeners).
    let mut browser = match Browser::new(app, GovernorScheduler::new(PerfGovernor)) {
        Ok(browser) => browser,
        Err(e) => {
            let (code, area) = match &e {
                BrowserError::Html(_) => (LintCode::HtmlParse, Area::Html),
                BrowserError::Css(_) => (LintCode::CssRecovered, Area::Css),
                BrowserError::Parse(_) | BrowserError::Script(_) | BrowserError::Budget(_) => {
                    (LintCode::ScriptLoad, Area::App)
                }
            };
            out.push(Diagnostic::new(
                code,
                Location::new(area, "load"),
                format!("app failed to load: {e}"),
            ));
            out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
            return report;
        }
    };
    // Effect upper bounds for every registered listener (all event
    // types), computed before pass 2 so AUTOGREEN's static precheck is
    // effect-aware, and installed on the browser so `static_precheck`
    // sees exactly the table the engine would consume.
    let units = parse_units(&app.scripts);
    // Compile handlers through the cache the browser warmed at load:
    // the engine and every analysis pass below share one compiled
    // artifact per callback (zero-copy on the bytecode path).
    let summaries = effect_summaries_of(
        &browser,
        &EffectAnalyzer::from_units(&units),
        browser.handler_cache(),
    );
    browser.set_effect_summaries(&summaries);
    let cache = browser.handler_cache();

    let live_doc = browser.document();
    let listeners: Vec<ListenerInfo> = browser
        .listener_targets()
        .into_iter()
        .filter(|(_, event)| event.is_user_interaction())
        .map(|(node, event)| ListenerInfo {
            node,
            event,
            covered: table.lookup(live_doc, node, event).is_some(),
        })
        .collect();

    // Pass 2: handler coverage vs. AUTOGREEN's static plan.
    let plan = AutoGreen::new().static_precheck(&browser);
    passes::handler_coverage(live_doc, &app.html, &listeners, &plan, out);

    // Pass 3: per-handler cost lower bounds.
    let peak = platform.peak();
    let ipc = platform.cluster(CoreType::Big).ipc;
    let rate_per_ms = WorkUnit::rate(peak, ipc) / 1_000.0;
    let analyzer = CostAnalyzer::from_units(&units, rate_per_ms);
    let mut costs: BTreeMap<(NodeId, EventType), HandlerCost> = BTreeMap::new();
    for info in &listeners {
        let mut total = HandlerCost::default();
        let mut analyzed = 0usize;
        for callback in browser.listener_callbacks(info.node, info.event) {
            if let Some(handler) = cache.compile_callback(callback) {
                total = total.plus(&analyzer.analyze_compiled(&handler));
                analyzed += 1;
            }
        }
        if analyzed == 0 {
            continue;
        }
        let element = describe_element(live_doc, info.node);
        let context = format!("{element} on{}", info.event);
        if total.unbounded_loops > 0 {
            out.push(Diagnostic::new(
                LintCode::UnboundedLoop,
                Location::new(Area::App, context.clone()),
                format!(
                    "`{element}` on{}: {} loop(s) have no statically countable bound; \
                     they contribute nothing to the cost estimate",
                    info.event, total.unbounded_loops
                ),
            ));
        }
        let guaranteed = total.guaranteed_ms(rate_per_ms) + app.cost.input_ipc_ms;
        out.push(Diagnostic::new(
            LintCode::HandlerCostBound,
            Location::new(Area::App, context),
            format!(
                "`{element}` on{}: handler guarantees >= {:.0} explicit cycles + {:.2} ms \
                 independent work ({:.2} ms at peak{})",
                info.event,
                total.work_cycles,
                total.gpu_ms,
                guaranteed,
                if total.fuel_exhausted {
                    ", exploration truncated"
                } else {
                    ""
                },
            ),
        ));
        costs.insert((info.node, info.event), total);
    }

    // Pass 4: feasibility at the platform's peak configuration.
    report.unsatisfiable =
        passes::platform_feasibility(app, live_doc, &table, &listeners, &costs, platform, out);

    // Pass 5: effect lints over the summary table.
    let mut by_target: BTreeMap<(NodeId, EventType), Vec<&EffectSummary>> = BTreeMap::new();
    for hs in &summaries {
        by_target
            .entry((hs.node, hs.event))
            .or_default()
            .push(&hs.summary);
    }
    for ((node, event), sums) in &by_target {
        let element = describe_element(live_doc, *node);
        let context = format!("{element} on{event}");
        let covered = table.lookup(live_doc, *node, *event).is_some();
        if covered
            && event.is_user_interaction()
            && sums.iter().all(|s| s.is_pure() || s.is_logs_only())
        {
            out.push(Diagnostic::new(
                LintCode::InertHandler,
                Location::new(Area::App, context.clone()),
                format!(
                    "`{element}` on{event}: every handler is statically pure{}; the QoS \
                     annotation drives governor transitions for no observable work",
                    if sums.iter().any(|s| s.may_log) {
                        " (logs only)"
                    } else {
                        ""
                    },
                ),
            ));
        }
        if sums.iter().any(|s| s.zero_delay_chain) {
            out.push(Diagnostic::new(
                LintCode::ZeroDelayChain,
                Location::new(Area::App, context.clone()),
                format!(
                    "`{element}` on{event}: handler provably arms a zero-delay setTimeout \
                     chain — a busy-loop in disguise that keeps the core out of idle"
                ),
            ));
        }
        if matches!(event, EventType::Scroll | EventType::TouchMove)
            && sums.iter().any(|s| s.may_mutate_structure())
        {
            out.push(Diagnostic::new(
                LintCode::HotStructureMutation,
                Location::new(Area::App, context.clone()),
                format!(
                    "`{element}` on{event}: handler may mutate document structure on a \
                     high-frequency event, forcing clear-all style invalidation every firing"
                ),
            ));
        }
    }
    report.effect_summaries = summaries;

    report
        .diagnostics
        .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(html: &str, css: &str, script: &str) -> App {
        App::builder("lint-test")
            .html(html)
            .css(css)
            .script(script)
            .build()
    }

    #[test]
    fn clean_app_is_quiet_apart_from_notes() {
        let a = app(
            "<button id='go'>go</button>",
            "#go:QoS { onclick-qos: single, short; }",
            "addEventListener(getElementById('go'), 'click', function(e) { markDirty(); });",
        );
        let report = analyze(&a);
        assert!(!report.has_errors(), "{}", report.render_text());
        assert_eq!(report.count(Severity::Warn), 0, "{}", report.render_text());
        // The cost-bound note for the handler is expected.
        assert_eq!(report.with_code(LintCode::HandlerCostBound).len(), 1);
    }

    #[test]
    fn all_four_defect_classes_detected() {
        let a = app(
            "<button id='go'>go</button><div id='boat'></div><div id='slow'></div>",
            // Dead (nothing matches #ghost), conflicting (two equal
            // #go rules disagree), and an unknown event.
            "#ghost:QoS { onclick-qos: single, short; }
             #go:QoS { onclick-qos: single, short; }
             #go:QoS { onclick-qos: single, long; }
             #boat:QoS { onhover-qos: continuous; }
             #slow:QoS { onclick-qos: single, short; }",
            // Uncovered handler on #boat (its only annotation was
            // dropped), plus an unsatisfiable #slow: ~2.2 s of
            // guaranteed work at peak against a 300 ms usable target.
            "addEventListener(getElementById('go'), 'click', function(e) { markDirty(); });
             addEventListener(getElementById('slow'), 'click', function(e) {
                 work(8000000000); markDirty();
             });
             addEventListener(getElementById('boat'), 'touchstart', function(e) { markDirty(); });",
        );
        let report = analyze(&a);
        assert!(!report.with_code(LintCode::DeadAnnotation).is_empty());
        assert!(!report
            .with_code(LintCode::ConflictingAnnotations)
            .is_empty());
        assert!(!report.with_code(LintCode::UnknownQosEvent).is_empty());
        assert!(!report.with_code(LintCode::UncoveredHandler).is_empty());
        assert!(!report.with_code(LintCode::UnsatisfiableTarget).is_empty());
        assert!(report.has_errors());
        assert_eq!(report.unsatisfiable.len(), 1);
        let f = &report.unsatisfiable[0];
        assert_eq!(f.node_id.as_deref(), Some("slow"));
        assert!(f.bound_ms > f.usable_ms);
    }

    #[test]
    fn json_is_deterministic() {
        let a = app(
            "<button id='go'>go</button>",
            "#ghost:QoS { onclick-qos: single, short; }",
            "addEventListener(getElementById('go'), 'click', function(e) { markDirty(); });",
        );
        let first = analyze(&a).render_json();
        let second = analyze(&a).render_json();
        assert_eq!(first, second);
        assert!(first.contains("\"code\":\"GW012\""));
    }

    #[test]
    fn html_parse_failure_is_an_error() {
        let a = App::builder("broken").html("<div <div>").build();
        let report = analyze(&a);
        if report.diagnostics.is_empty() {
            // The HTML parser may recover from this; only assert the
            // report stays well-formed in that case.
            assert!(!report.has_errors());
        } else {
            assert!(report
                .diagnostics
                .iter()
                .all(|d| d.code == LintCode::HtmlParse || d.code == LintCode::CssRecovered));
        }
    }
}
