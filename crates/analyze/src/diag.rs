//! Lint-coded diagnostics: the `GW0xx` registry, severities, synthesized
//! source locations, and deterministic text/JSON rendering.
//!
//! The CSS and script ASTs carry no byte spans, so locations are
//! *synthesized*: the analyzer searches the app's source text for the
//! construct it is reporting (a selector, a property, a registration
//! line) and records the 1-based line it found, plus a context snippet.
//! That keeps diagnostics clickable without threading spans through
//! every parser in the workspace.

use std::fmt;

/// Diagnostic severity, ordered most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The app is wrong: an annotation is dropped at runtime or a QoS
    /// target is provably missed. CI fails on new errors.
    Error,
    /// Suspicious but runnable: shadowed/dead rules, uncovered handlers,
    /// unboundable loops.
    Warn,
    /// Informational: cost bounds, AUTOGREEN cross-check results.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Note => "note",
        })
    }
}

/// The lint-code registry. Codes are grouped by pass:
/// `GW00x` front end, `GW01x` annotation sanity, `GW02x` handler
/// coverage, `GW03x` cost bounds, `GW04x` platform feasibility,
/// `GW05x` effect purity/scheduling, `GW06x` invalidation pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// GW001: the stylesheet needed browser-style error recovery.
    CssRecovered,
    /// GW002: the HTML document failed to parse.
    HtmlParse,
    /// GW003: a script failed to parse, compile, or load.
    ScriptLoad,
    /// GW010: an `on<event>-qos` property names an unknown event; the
    /// annotation is dropped at runtime.
    UnknownQosEvent,
    /// GW011: a QoS value on a known event is malformed; the runtime
    /// substitutes the event's Table 1 category default.
    BadQosValue,
    /// GW012: a `:QoS` selector matches no element — the annotation is
    /// dead.
    DeadAnnotation,
    /// GW013: an annotation matches elements but never wins a cascade
    /// lookup — it is shadowed by more specific or later rules.
    ShadowedAnnotation,
    /// GW014: two annotations of equal specificity declare different QoS
    /// for the same (element, event); source order silently decides.
    ConflictingAnnotations,
    /// GW020: a registered event handler has no reachable annotation.
    UncoveredHandler,
    /// GW021: AUTOGREEN can generate an annotation for an uncovered
    /// handler.
    AutoAnnotatable,
    /// GW022: AUTOGREEN would also skip this uncovered handler.
    AutoGreenSkip,
    /// GW030: a handler's statically derived lower-bound cost.
    HandlerCostBound,
    /// GW031: a loop in a handler has no statically countable bound; it
    /// analyzes to ⊤ (contributes nothing to the lower bound).
    UnboundedLoop,
    /// GW040: a single-response QoS target is lower than the handler's
    /// cost bound even at peak performance — a guaranteed deadline miss.
    UnsatisfiableTarget,
    /// GW041: the imperceptible-scenario target is below the cost bound
    /// at peak; only the usable scenario can be met.
    InfeasibleImperceptible,
    /// GW042: a continuous (per-frame) target is below the handler's
    /// cost bound at peak.
    ContinuousOverBudget,
    /// GW050: every handler on an annotated hot event is statically
    /// pure (or logs-only) — the annotation buys nothing; the engine can
    /// skip governor transitions for it entirely.
    InertHandler,
    /// GW051: a handler provably arms a zero-delay `setTimeout` chain —
    /// a busy-loop in disguise that defeats DVFS idling.
    ZeroDelayChain,
    /// GW060: a handler on a high-frequency event (scroll/touchmove) may
    /// mutate document structure, forcing clear-all style invalidation
    /// on every firing.
    HotStructureMutation,
}

impl LintCode {
    /// The stable `GW0xx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::CssRecovered => "GW001",
            LintCode::HtmlParse => "GW002",
            LintCode::ScriptLoad => "GW003",
            LintCode::UnknownQosEvent => "GW010",
            LintCode::BadQosValue => "GW011",
            LintCode::DeadAnnotation => "GW012",
            LintCode::ShadowedAnnotation => "GW013",
            LintCode::ConflictingAnnotations => "GW014",
            LintCode::UncoveredHandler => "GW020",
            LintCode::AutoAnnotatable => "GW021",
            LintCode::AutoGreenSkip => "GW022",
            LintCode::HandlerCostBound => "GW030",
            LintCode::UnboundedLoop => "GW031",
            LintCode::UnsatisfiableTarget => "GW040",
            LintCode::InfeasibleImperceptible => "GW041",
            LintCode::ContinuousOverBudget => "GW042",
            LintCode::InertHandler => "GW050",
            LintCode::ZeroDelayChain => "GW051",
            LintCode::HotStructureMutation => "GW060",
        }
    }

    /// A short kebab-case name for the lint.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::CssRecovered => "css-recovered",
            LintCode::HtmlParse => "html-parse",
            LintCode::ScriptLoad => "script-load",
            LintCode::UnknownQosEvent => "unknown-qos-event",
            LintCode::BadQosValue => "bad-qos-value",
            LintCode::DeadAnnotation => "dead-annotation",
            LintCode::ShadowedAnnotation => "shadowed-annotation",
            LintCode::ConflictingAnnotations => "conflicting-annotations",
            LintCode::UncoveredHandler => "uncovered-handler",
            LintCode::AutoAnnotatable => "auto-annotatable",
            LintCode::AutoGreenSkip => "autogreen-skip",
            LintCode::HandlerCostBound => "handler-cost-bound",
            LintCode::UnboundedLoop => "unbounded-loop",
            LintCode::UnsatisfiableTarget => "unsatisfiable-target",
            LintCode::InfeasibleImperceptible => "infeasible-imperceptible",
            LintCode::ContinuousOverBudget => "continuous-over-budget",
            LintCode::InertHandler => "inert-handler",
            LintCode::ZeroDelayChain => "zero-delay-chain",
            LintCode::HotStructureMutation => "hot-structure-mutation",
        }
    }

    /// The lint's default severity.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::HtmlParse
            | LintCode::ScriptLoad
            | LintCode::UnknownQosEvent
            | LintCode::UnsatisfiableTarget => Severity::Error,
            LintCode::CssRecovered
            | LintCode::BadQosValue
            | LintCode::DeadAnnotation
            | LintCode::ShadowedAnnotation
            | LintCode::ConflictingAnnotations
            | LintCode::UncoveredHandler
            | LintCode::UnboundedLoop
            | LintCode::InfeasibleImperceptible
            | LintCode::ContinuousOverBudget
            | LintCode::InertHandler
            | LintCode::ZeroDelayChain
            | LintCode::HotStructureMutation => Severity::Warn,
            LintCode::AutoAnnotatable | LintCode::AutoGreenSkip | LintCode::HandlerCostBound => {
                Severity::Note
            }
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Which source of the [`greenweb_engine::App`] a diagnostic points at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Area {
    /// The joined stylesheet (`App::css_source`).
    Css,
    /// The HTML document.
    Html,
    /// The `n`-th setup script.
    Script(usize),
    /// The application as a whole.
    App,
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Area::Css => f.write_str("css"),
            Area::Html => f.write_str("html"),
            Area::Script(i) => write!(f, "script[{i}]"),
            Area::App => f.write_str("app"),
        }
    }
}

/// A synthesized source location: area, best-effort 1-based line, and a
/// context snippet of the construct being reported.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Location {
    /// Which app source the diagnostic concerns.
    pub area: Area,
    /// Best-effort 1-based line within that source.
    pub line: Option<u32>,
    /// The construct (selector, property, registration…) being reported.
    pub context: String,
}

impl Location {
    /// A location with no line information.
    pub fn new(area: Area, context: impl Into<String>) -> Self {
        Location {
            area,
            line: None,
            context: context.into(),
        }
    }

    /// Attaches the line where `needle` first occurs in `source`.
    pub fn locate(mut self, source: &str, needle: &str) -> Self {
        self.line = line_of(source, needle);
        self
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{}:{line}", self.area),
            None => write!(f, "{}", self.area),
        }
    }
}

/// The 1-based line of the first occurrence of `needle` in `source`.
pub fn line_of(source: &str, needle: &str) -> Option<u32> {
    if needle.is_empty() {
        return None;
    }
    let at = source.find(needle)?;
    Some(1 + source[..at].bytes().filter(|&b| b == b'\n').count() as u32)
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// Severity (the code's default unless a pass downgrades it).
    pub severity: Severity,
    /// Where it fired.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: LintCode, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            location,
            message: message.into(),
        }
    }

    /// The deterministic sort key: code, then location, then message.
    pub fn sort_key(&self) -> (LintCode, &Location, &str) {
        (self.code, &self.location, &self.message)
    }

    /// Renders the one-line text form.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}: {} [{}]",
            self.severity, self.code, self.location, self.message, self.location.context
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes one diagnostic as a JSON object (stable field order).
pub fn diagnostic_json(d: &Diagnostic) -> String {
    let line = match d.location.line {
        Some(line) => line.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"area\":\"{}\",\"line\":{},\"context\":\"{}\",\"message\":\"{}\"}}",
        d.code.code(),
        d.code.name(),
        d.severity,
        d.location.area,
        line,
        json_escape(&d.location.context),
        json_escape(&d.message),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_grouped() {
        let all = [
            LintCode::CssRecovered,
            LintCode::HtmlParse,
            LintCode::ScriptLoad,
            LintCode::UnknownQosEvent,
            LintCode::BadQosValue,
            LintCode::DeadAnnotation,
            LintCode::ShadowedAnnotation,
            LintCode::ConflictingAnnotations,
            LintCode::UncoveredHandler,
            LintCode::AutoAnnotatable,
            LintCode::AutoGreenSkip,
            LintCode::HandlerCostBound,
            LintCode::UnboundedLoop,
            LintCode::UnsatisfiableTarget,
            LintCode::InfeasibleImperceptible,
            LintCode::ContinuousOverBudget,
            LintCode::InertHandler,
            LintCode::ZeroDelayChain,
            LintCode::HotStructureMutation,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "duplicate lint code");
        for c in all {
            assert!(c.code().starts_with("GW0"), "{}", c.code());
        }
    }

    #[test]
    fn line_of_counts_newlines() {
        let src = "a\nbb\nccc\n";
        assert_eq!(line_of(src, "a"), Some(1));
        assert_eq!(line_of(src, "bb"), Some(2));
        assert_eq!(line_of(src, "ccc"), Some(3));
        assert_eq!(line_of(src, "zz"), None);
    }

    #[test]
    fn render_and_json_are_stable() {
        let d = Diagnostic::new(
            LintCode::DeadAnnotation,
            Location::new(Area::Css, "#ghost:QoS").locate("x\n#ghost:QoS {}", "#ghost:QoS"),
            "selector matches no element",
        );
        assert_eq!(
            d.render(),
            "warn[GW012] css:2: selector matches no element [#ghost:QoS]"
        );
        assert!(diagnostic_json(&d).contains("\"line\":2"));
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
