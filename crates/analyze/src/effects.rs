//! Pass 5: bytecode effect inference (upper bounds).
//!
//! The mirror image of the cost pass: where [`crate::cost`] explores the
//! same bytecode CFG to produce a **lower** bound (forks keep the
//! cheaper arm, unknown callees contribute nothing), this pass produces
//! a sound **over-approximation** of everything a handler can ask the
//! browser to do — an [`EffectSummary`] the engine consumes to downgrade
//! cache invalidation and to check `dynamic ⊆ static` containment on
//! every callback return. The polarity inversion dictates every rule:
//!
//! - a ⊤-guarded branch explores both arms and **joins** them;
//! - an unknown or ambiguous callee, a method call, a member/index
//!   write, an exhausted exploration budget — anything the analyzer
//!   cannot model — collapses the summary to [`EffectSummary::top`];
//! - after inlining any user function, every scope binding is havocked
//!   to ⊤ (the callee may have captured and reassigned it);
//! - names assigned or shadowed anywhere in the program are *poisoned*:
//!   an unbound read or call of a poisoned name resolves to ⊤ instead of
//!   the global function table or a host builtin.
//!
//! Call resolution follows the runtime scope chain — local binding,
//! then the (unpoisoned) global function table, then host builtins —
//! unlike the cost pass, which checks `work`/`gpuWork` first; a lower
//! bound survives that imprecision, an upper bound would not.
//!
//! Recursive calls are cut with a *residue* summary whose counts are
//! unbounded but whose may-flags are empty: the recursed prototype's
//! instructions are all explored in the current activation under a
//! ⊤ entry state, so the join over paths already covers its flags and
//! targets; only per-activation counts need weakening. A call that is
//! merely too deep (`MAX_CALLS`) has never been explored and must be
//! ⊤ outright.
//!
//! `e.target` is the one piece of non-⊤ pointer knowledge: dispatch only
//! fires a listener on the capture/target phases, so the event target is
//! a descendant-or-self of the registered node, and writes through it
//! stay inside [`EffectTarget::ListenerSubtree`].

use crate::cost::{build_fn_table, FnTable, FUEL, MAX_CALLS, MAX_FORKS, MAX_REFORKS};
use crate::{CompiledHandler, HandlerCache, ScriptUnit};
use greenweb_engine::{EffectSummary, EffectTarget, TargetSet};
use greenweb_script::ast::Target;
use greenweb_script::compiler::{Const, Op, Proto};
use greenweb_script::{BinaryOp, Expr, Stmt, UnaryOp, Value};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// An abstract value. Like the cost pass's domain, concrete where the
/// program is concrete — plus the two facts this pass actually needs:
/// which values are the dispatched event (`Event`), its `.target` member
/// (`TargetNode`, provably in the listener's subtree), and which are
/// uniquely resolvable global functions (`FnRef`).
#[derive(Debug, Clone, PartialEq)]
enum AbsEff {
    Num(f64),
    Bool(bool),
    Null,
    /// A closure over proto `idx` of the *current* prototype table.
    Closure(usize),
    /// The uniquely resolvable global function of that name.
    FnRef(String),
    /// The event object passed to the handler.
    Event,
    /// `event.target`: a node in the listener's subtree.
    TargetNode,
    Unknown,
}

impl AbsEff {
    fn truthy(&self) -> Option<bool> {
        match self {
            AbsEff::Num(n) => Some(*n != 0.0 && !n.is_nan()),
            AbsEff::Bool(b) => Some(*b),
            AbsEff::Null => Some(false),
            AbsEff::Closure(_) | AbsEff::FnRef(_) | AbsEff::Event => Some(true),
            // A node handle is a number and node 0 exists, so a target
            // may legitimately be falsy.
            AbsEff::TargetNode | AbsEff::Unknown => None,
        }
    }
}

/// Effects accumulated along one abstract execution path, plus the
/// zero-delay scheduling edges seen (callee names of provably zero-delay
/// `setTimeout` registrations, feeding the chain lint).
#[derive(Debug, Clone)]
struct PathEffects {
    summary: EffectSummary,
    zero_delay_names: BTreeSet<String>,
}

impl PathEffects {
    /// The sequential identity: nothing has happened yet.
    fn pure() -> Self {
        PathEffects {
            summary: EffectSummary::pure(),
            zero_delay_names: BTreeSet::new(),
        }
    }

    /// The absorbing element for an unanalyzable continuation.
    fn top() -> Self {
        PathEffects {
            summary: EffectSummary::top(),
            zero_delay_names: BTreeSet::new(),
        }
    }

    /// Sequential composition with an unanalyzable suffix: the prefix's
    /// guarantees (must-counts, chain evidence) survive, everything else
    /// is weakened to ⊤.
    fn seq_top(self) -> Self {
        self.seq_path(PathEffects::top())
    }

    /// Sequential composition: `self` then `other` on the same path.
    fn seq_path(self, other: PathEffects) -> Self {
        PathEffects {
            summary: seq(&self.summary, &other.summary),
            zero_delay_names: self
                .zero_delay_names
                .union(&other.zero_delay_names)
                .cloned()
                .collect(),
        }
    }

    /// Join at a control-flow merge: either path may have run.
    fn join(self, other: PathEffects) -> Self {
        PathEffects {
            summary: self.summary.join(&other.summary),
            zero_delay_names: self
                .zero_delay_names
                .union(&other.zero_delay_names)
                .cloned()
                .collect(),
        }
    }
}

/// Sequential composition of two summaries: counts add (saturating, with
/// `None` = unbounded absorbing), may-flags or, target sets union, and
/// must-counts add. If either side is ⊤ the result is ⊤ — but the
/// must-guarantees and chain evidence still add/or: a guarantee
/// established by the analyzable prefix holds no matter what the
/// unanalyzable suffix does.
fn seq(a: &EffectSummary, b: &EffectSummary) -> EffectSummary {
    if a.top || b.top {
        let mut t = EffectSummary::top();
        t.zero_delay_chain = a.zero_delay_chain || b.zero_delay_chain;
        t.rafs_min = a.rafs_min + b.rafs_min;
        t.animates_min = a.animates_min + b.animates_min;
        return t;
    }
    let add_u64 = |x: Option<u64>, y: Option<u64>| Some(x?.saturating_add(y?));
    let add_f64 = |x: Option<f64>, y: Option<f64>| Some(x? + y?);
    EffectSummary {
        top: false,
        may_mutate_tree: a.may_mutate_tree || b.may_mutate_tree,
        attr_targets: a.attr_targets.join(&b.attr_targets),
        style_targets: a.style_targets.join(&b.style_targets),
        may_dirty: a.may_dirty || b.may_dirty,
        may_log: a.may_log || b.may_log,
        may_add_listener: a.may_add_listener || b.may_add_listener,
        may_animate: a.may_animate || b.may_animate,
        timers: add_u64(a.timers, b.timers),
        zero_delay_timer: a.zero_delay_timer || b.zero_delay_timer,
        zero_delay_chain: a.zero_delay_chain || b.zero_delay_chain,
        rafs: add_u64(a.rafs, b.rafs),
        rafs_min: a.rafs_min + b.rafs_min,
        animates_min: a.animates_min + b.animates_min,
        work_cycles: add_f64(a.work_cycles, b.work_cycles),
        gpu_ms: add_f64(a.gpu_ms, b.gpu_ms),
    }
}

/// The residue substituted for a recursive call: counts unbounded,
/// flags empty (covered by the current activation's own exploration of
/// the same prototype under a ⊤ entry state — see the module docs).
fn recursion_residue() -> EffectSummary {
    EffectSummary {
        timers: None,
        rafs: None,
        work_cycles: None,
        gpu_ms: None,
        ..EffectSummary::pure()
    }
}

/// The effect-bound analyzer for one application's scripts.
pub struct EffectAnalyzer {
    /// Uniquely resolvable top-level functions, shared with the cost pass.
    functions: FnTable,
    /// Every name that is var-declared, assigned, or used as a function
    /// parameter anywhere: reads and calls of these resolve to ⊤ when no
    /// scope binding is in sight, never to the function table or a host
    /// builtin.
    poisoned: HashSet<String>,
    /// Per-global-function zero-delay `setTimeout` callee sets, computed
    /// on demand for the chain lint.
    zero_delay_memo: RefCell<HashMap<String, BTreeSet<String>>>,
}

impl EffectAnalyzer {
    /// Builds the analyzer from the app's setup scripts.
    pub fn new(scripts: &[String]) -> Self {
        Self::from_units(&crate::parse_units(scripts))
    }

    /// Builds the analyzer from pre-parsed script units shared with the
    /// cost pass.
    pub(crate) fn from_units(units: &[ScriptUnit]) -> Self {
        EffectAnalyzer {
            functions: build_fn_table(units),
            poisoned: poisoned_names(units),
            zero_delay_memo: RefCell::new(HashMap::new()),
        }
    }

    /// Analyzes one registered listener callback. Returns `None` when
    /// the value is not a function or its body fails to compile (such a
    /// callback also never runs, so there is nothing to summarize).
    pub fn analyze_callback(&self, callback: &Value) -> Option<EffectSummary> {
        let cache = HandlerCache::default();
        cache
            .compile_callback(callback)
            .map(|h| self.analyze_compiled(&h))
    }

    /// Analyzes a handler compiled through the shared [`HandlerCache`].
    pub(crate) fn analyze_compiled(&self, handler: &CompiledHandler) -> EffectSummary {
        let path = self.explore_entry(&handler.protos, handler.main, &handler.params);
        let mut summary = path.summary;
        if !path.zero_delay_names.is_empty()
            && self.reaches_zero_delay_cycle(&path.zero_delay_names)
        {
            summary.zero_delay_chain = true;
        }
        summary
    }

    fn explore_entry(
        &self,
        protos: &Arc<Vec<Proto>>,
        main: usize,
        entry_params: &[String],
    ) -> PathEffects {
        let mut explorer = Explorer {
            analyzer: self,
            fuel: FUEL,
        };
        let mut call_stack = Vec::new();
        explorer.explore_proto_bound(protos, main, &mut call_stack, entry_params)
    }

    /// The named functions `name` may schedule with a provably zero
    /// delay, memoized (the zero-delay scheduling graph's edges).
    fn zero_delay_callees(&self, name: &str) -> BTreeSet<String> {
        if let Some(hit) = self.zero_delay_memo.borrow().get(name) {
            return hit.clone();
        }
        let set = match self.functions.get(name) {
            Some(Some(fref)) => {
                let protos = Arc::clone(&fref.protos);
                self.explore_entry(&protos, fref.proto, &[])
                    .zero_delay_names
            }
            _ => BTreeSet::new(),
        };
        self.zero_delay_memo
            .borrow_mut()
            .insert(name.to_string(), set.clone());
        set
    }

    /// Whether some function reachable from `seeds` along zero-delay
    /// scheduling edges lies on a cycle (self-loops included): the
    /// handler then provably arms a zero-delay timer chain.
    fn reaches_zero_delay_cycle(&self, seeds: &BTreeSet<String>) -> bool {
        fn dfs(
            analyzer: &EffectAnalyzer,
            name: &str,
            on_stack: &mut Vec<String>,
            done: &mut BTreeSet<String>,
        ) -> bool {
            if on_stack.iter().any(|n| n == name) {
                return true;
            }
            if done.contains(name) {
                return false;
            }
            on_stack.push(name.to_string());
            let cyclic = analyzer
                .zero_delay_callees(name)
                .iter()
                .any(|callee| dfs(analyzer, callee, on_stack, done));
            on_stack.pop();
            done.insert(name.to_string());
            cyclic
        }
        let mut done = BTreeSet::new();
        seeds
            .iter()
            .any(|seed| dfs(self, seed, &mut Vec::new(), &mut done))
    }
}

/// Collects every name the abstract interpreter must never resolve
/// statically: var declarations, assignment targets, and function
/// parameters, anywhere in any script. Top-level `function` declaration
/// *names* are deliberately not poisoned — redeclaration ambiguity is
/// already handled by the function table mapping them to `None`.
fn poisoned_names(units: &[ScriptUnit]) -> HashSet<String> {
    let mut out = HashSet::new();
    for unit in units {
        if let Some(program) = &unit.program {
            for stmt in &program.body {
                poison_stmt(stmt, &mut out);
            }
        }
    }
    out
}

fn poison_stmt(stmt: &Stmt, out: &mut HashSet<String>) {
    match stmt {
        Stmt::VarDecl { name, init, .. } => {
            out.insert(name.clone());
            if let Some(init) = init {
                poison_expr(init, out);
            }
        }
        Stmt::FunctionDecl { params, body, .. } => {
            out.extend(params.iter().cloned());
            for s in body.iter() {
                poison_stmt(s, out);
            }
        }
        Stmt::Expr(e) | Stmt::Return(Some(e)) => poison_expr(e, out),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            poison_expr(cond, out);
            for s in then_branch.iter().chain(else_branch.iter()) {
                poison_stmt(s, out);
            }
        }
        Stmt::While { cond, body } => {
            poison_expr(cond, out);
            for s in body {
                poison_stmt(s, out);
            }
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            if let Some(init) = init {
                poison_stmt(init, out);
            }
            if let Some(cond) = cond {
                poison_expr(cond, out);
            }
            if let Some(update) = update {
                poison_expr(update, out);
            }
            for s in body {
                poison_stmt(s, out);
            }
        }
        Stmt::Block(body) => {
            for s in body {
                poison_stmt(s, out);
            }
        }
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
    }
}

fn poison_expr(expr: &Expr, out: &mut HashSet<String>) {
    match expr {
        Expr::Number(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_) => {}
        Expr::Array(items) => {
            for e in items {
                poison_expr(e, out);
            }
        }
        Expr::Object(pairs) => {
            for (_, e) in pairs {
                poison_expr(e, out);
            }
        }
        Expr::Function { params, body } => {
            out.extend(params.iter().cloned());
            for s in body.iter() {
                poison_stmt(s, out);
            }
        }
        Expr::Assign { target, value } => {
            match target {
                Target::Var(name) => {
                    out.insert(name.clone());
                }
                Target::Member(object, _) => poison_expr(object, out),
                Target::Index(object, index) => {
                    poison_expr(object, out);
                    poison_expr(index, out);
                }
            }
            poison_expr(value, out);
        }
        Expr::Binary { lhs, rhs, .. } => {
            poison_expr(lhs, out);
            poison_expr(rhs, out);
        }
        Expr::Unary { operand, .. } => poison_expr(operand, out),
        Expr::Conditional {
            cond,
            then_value,
            else_value,
        } => {
            poison_expr(cond, out);
            poison_expr(then_value, out);
            poison_expr(else_value, out);
        }
        Expr::Call { callee, args, .. } => {
            poison_expr(callee, out);
            for e in args {
                poison_expr(e, out);
            }
        }
        Expr::Member { object, .. } => poison_expr(object, out),
        Expr::Index { object, index } => {
            poison_expr(object, out);
            poison_expr(index, out);
        }
    }
}

/// Identity of a prototype across programs: table pointer + index.
type ProtoKey = (usize, usize);

type Scopes = Vec<HashMap<u32, AbsEff>>;

/// Per-path fork counts, keyed by branch pc.
type Forked = HashMap<u32, u32>;

struct Explorer<'a> {
    analyzer: &'a EffectAnalyzer,
    fuel: u64,
}

impl Explorer<'_> {
    fn explore_proto(
        &mut self,
        protos: &Arc<Vec<Proto>>,
        index: usize,
        call_stack: &mut Vec<ProtoKey>,
    ) -> PathEffects {
        self.explore_proto_bound(protos, index, call_stack, &[])
    }

    fn explore_proto_bound(
        &mut self,
        protos: &Arc<Vec<Proto>>,
        index: usize,
        call_stack: &mut Vec<ProtoKey>,
        entry_params: &[String],
    ) -> PathEffects {
        let key: ProtoKey = (Arc::as_ptr(protos) as usize, index);
        if call_stack.contains(&key) {
            return PathEffects {
                summary: recursion_residue(),
                zero_delay_names: BTreeSet::new(),
            };
        }
        // A call that is too deep was never explored at all: unlike
        // recursion, nothing covers its flags, so it must be ⊤.
        if call_stack.len() >= MAX_CALLS as usize {
            return PathEffects::top();
        }
        let Some(proto) = protos.get(index) else {
            return PathEffects::top();
        };
        call_stack.push(key);
        let mut stack = Vec::new();
        let mut scopes: Scopes = vec![HashMap::new()];
        // The dispatched event is the handler's first parameter; the
        // compiler interns every name at a stable per-proto index, so an
        // unreferenced parameter is simply absent from `names`.
        if let Some(param) = entry_params.first() {
            if let Some(idx) = proto.names.iter().position(|n| n == param) {
                scopes[0].insert(idx as u32, AbsEff::Event);
            }
        }
        let eff = self.run(
            protos,
            proto,
            0,
            &mut stack,
            &mut scopes,
            &mut Forked::new(),
            call_stack,
            0,
        );
        call_stack.pop();
        eff
    }

    /// Abstractly executes `proto` from `pc` to a `Return`/fall-off,
    /// returning the effects of the path (joined over every fork).
    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        protos: &Arc<Vec<Proto>>,
        proto: &Proto,
        mut pc: u32,
        stack: &mut Vec<AbsEff>,
        scopes: &mut Scopes,
        forked: &mut Forked,
        call_stack: &mut Vec<ProtoKey>,
        fork_depth: u32,
    ) -> PathEffects {
        let mut eff = PathEffects::pure();
        loop {
            if self.fuel == 0 {
                // Out of budget: the unexplored remainder admits anything.
                return eff.seq_top();
            }
            self.fuel -= 1;
            let Some(op) = proto.code.get(pc as usize) else {
                return eff; // fell off the end: implicit return
            };
            let mut next = pc + 1;
            match *op {
                Op::Const(i) => stack.push(match proto.consts.get(i as usize) {
                    Some(Const::Number(n)) => AbsEff::Num(*n),
                    Some(Const::Bool(b)) => AbsEff::Bool(*b),
                    Some(Const::Null) => AbsEff::Null,
                    Some(Const::Str(_)) | None => AbsEff::Unknown,
                }),
                Op::GetVar(i) => {
                    let bound = scopes.iter().rev().find_map(|s| s.get(&i).cloned());
                    let v = bound.unwrap_or_else(|| match proto.names.get(i as usize) {
                        Some(n) if self.analyzer.poisoned.contains(n) => AbsEff::Unknown,
                        Some(n) if matches!(self.analyzer.functions.get(n), Some(Some(_))) => {
                            AbsEff::FnRef(n.clone())
                        }
                        _ => AbsEff::Unknown,
                    });
                    stack.push(v);
                }
                Op::SetVar(i) => {
                    let v = pop(stack);
                    match scopes.iter_mut().rev().find(|s| s.contains_key(&i)) {
                        Some(scope) => {
                            scope.insert(i, v);
                        }
                        None => {
                            // Assignment to a captured/global variable the
                            // analyzer cannot see; remember it locally so
                            // later reads at least agree within this path.
                            if let Some(first) = scopes.first_mut() {
                                first.insert(i, v);
                            }
                        }
                    }
                }
                Op::DeclVar(i) => {
                    let v = pop(stack);
                    if let Some(last) = scopes.last_mut() {
                        last.insert(i, v);
                    }
                }
                Op::Pop => {
                    pop(stack);
                }
                Op::Dup => {
                    let v = stack.last().cloned().unwrap_or(AbsEff::Unknown);
                    stack.push(v);
                }
                Op::PushScope => scopes.push(HashMap::new()),
                Op::PopScope => {
                    if scopes.len() > 1 {
                        scopes.pop();
                    }
                }
                Op::Binary(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    stack.push(binary(op, l, r));
                }
                Op::Unary(op) => {
                    let v = pop(stack);
                    stack.push(match (op, v) {
                        (UnaryOp::Neg, AbsEff::Num(n)) => AbsEff::Num(-n),
                        (UnaryOp::Not, v) => match v.truthy() {
                            Some(b) => AbsEff::Bool(!b),
                            None => AbsEff::Unknown,
                        },
                        _ => AbsEff::Unknown,
                    });
                }
                Op::Jump(t) => next = t,
                Op::JumpIfFalse(t) => {
                    let cond = pop(stack);
                    match cond.truthy() {
                        Some(true) => {}
                        Some(false) => next = t,
                        None => {
                            return eff.seq_path(self.fork(
                                protos, proto, pc, t, next, stack, scopes, forked, call_stack,
                                fork_depth,
                            ))
                        }
                    }
                }
                Op::JumpIfFalsePeek(t) => {
                    let cond = stack.last().cloned().unwrap_or(AbsEff::Unknown);
                    match cond.truthy() {
                        Some(true) => {}
                        Some(false) => next = t,
                        None => {
                            return eff.seq_path(self.fork(
                                protos, proto, pc, t, next, stack, scopes, forked, call_stack,
                                fork_depth,
                            ))
                        }
                    }
                }
                Op::JumpIfTruePeek(t) => {
                    let cond = stack.last().cloned().unwrap_or(AbsEff::Unknown);
                    match cond.truthy() {
                        Some(true) => next = t,
                        Some(false) => {}
                        None => {
                            return eff.seq_path(self.fork(
                                protos, proto, pc, t, next, stack, scopes, forked, call_stack,
                                fork_depth,
                            ))
                        }
                    }
                }
                Op::MakeArray(n) => {
                    popn(stack, n as usize);
                    stack.push(AbsEff::Unknown);
                }
                Op::MakeObject { count, .. } => {
                    popn(stack, count as usize);
                    stack.push(AbsEff::Unknown);
                }
                Op::MakeClosure(i) => stack.push(AbsEff::Closure(i as usize)),
                Op::CallName { name, argc } => {
                    let args = popn(stack, argc as usize);
                    let local = scopes.iter().rev().find_map(|s| s.get(&name).cloned());
                    match local {
                        Some(AbsEff::Closure(ci)) => {
                            let callee = self.explore_proto(protos, ci, call_stack);
                            eff = eff.seq_path(callee);
                            if eff.summary.top {
                                return eff;
                            }
                            havoc(scopes);
                            stack.push(AbsEff::Unknown);
                        }
                        Some(AbsEff::FnRef(gname)) => {
                            match self.resolve_global(&gname, call_stack) {
                                Some(callee) => {
                                    eff = eff.seq_path(callee);
                                    if eff.summary.top {
                                        return eff;
                                    }
                                    havoc(scopes);
                                    stack.push(AbsEff::Unknown);
                                }
                                None => return eff.seq_top(),
                            }
                        }
                        // A bound non-function (or ⊤) value is being
                        // called: unanalyzable.
                        Some(_) => return eff.seq_top(),
                        None => {
                            let Some(fname) = proto.names.get(name as usize) else {
                                return eff.seq_top();
                            };
                            if self.analyzer.poisoned.contains(fname) {
                                return eff.seq_top();
                            }
                            if let Some(entry) = self.analyzer.functions.get(fname) {
                                // The runtime scope chain resolves global
                                // script functions before host builtins.
                                if entry.is_none() {
                                    return eff.seq_top();
                                }
                                match self.resolve_global(fname, call_stack) {
                                    Some(callee) => {
                                        eff = eff.seq_path(callee);
                                        if eff.summary.top {
                                            return eff;
                                        }
                                        havoc(scopes);
                                        stack.push(AbsEff::Unknown);
                                    }
                                    None => return eff.seq_top(),
                                }
                            } else if apply_builtin(fname, &args, &mut eff) {
                                stack.push(AbsEff::Unknown);
                            } else {
                                // Unknown name: the call errors or does
                                // something the analyzer cannot model.
                                return eff.seq_top();
                            }
                        }
                    }
                }
                Op::CallValue { argc } => {
                    popn(stack, argc as usize);
                    let callee = pop(stack);
                    let resolved = match callee {
                        AbsEff::Closure(ci) => Some(self.explore_proto(protos, ci, call_stack)),
                        AbsEff::FnRef(gname) => self.resolve_global(&gname, call_stack),
                        _ => None,
                    };
                    match resolved {
                        Some(callee_eff) => {
                            eff = eff.seq_path(callee_eff);
                            if eff.summary.top {
                                return eff;
                            }
                            havoc(scopes);
                            stack.push(AbsEff::Unknown);
                        }
                        None => return eff.seq_top(),
                    }
                }
                // A function-valued member can hold any closure, and the
                // receiver is always abstract here: unanalyzable.
                Op::CallMethod { .. } => return eff.seq_top(),
                Op::CallMath { argc, .. } => {
                    popn(stack, argc as usize);
                    stack.push(AbsEff::Unknown);
                }
                Op::GetMember(i) => {
                    let object = pop(stack);
                    let member = proto.names.get(i as usize).map(String::as_str);
                    if object == AbsEff::Event && member == Some("target") {
                        stack.push(AbsEff::TargetNode);
                    } else {
                        stack.push(AbsEff::Unknown);
                    }
                }
                // Member/index writes mutate shared heap objects the
                // domain does not model (and would error on node
                // handles): give up.
                Op::SetMember(_) | Op::SetIndex => return eff.seq_top(),
                Op::GetIndex => {
                    pop(stack);
                    pop(stack);
                    stack.push(AbsEff::Unknown);
                }
                Op::Return => return eff,
            }
            pc = next;
        }
    }

    /// Inlines a uniquely resolved global function. `None` when the name
    /// is unknown or ambiguous (caller must go to ⊤).
    fn resolve_global(
        &mut self,
        name: &str,
        call_stack: &mut Vec<ProtoKey>,
    ) -> Option<PathEffects> {
        let fref = self.analyzer.functions.get(name)?.clone()?;
        Some(self.explore_proto(&fref.protos, fref.proto, call_stack))
    }

    /// Explores both successors of a branch whose condition is ⊤ and
    /// joins them. A repeated fork at the same `pc` along one path is a
    /// loop whose trip count the analyzer cannot bound: the whole
    /// remainder collapses to ⊤ (the body may repeat any number of
    /// times, so no finite count or bounded target set survives).
    #[allow(clippy::too_many_arguments)]
    fn fork(
        &mut self,
        protos: &Arc<Vec<Proto>>,
        proto: &Proto,
        pc: u32,
        target: u32,
        fallthrough: u32,
        stack: &mut Vec<AbsEff>,
        scopes: &mut Scopes,
        forked: &mut Forked,
        call_stack: &mut Vec<ProtoKey>,
        fork_depth: u32,
    ) -> PathEffects {
        let reforks = forked.get(&pc).copied().unwrap_or(0);
        if reforks >= MAX_REFORKS || fork_depth >= MAX_FORKS {
            return PathEffects::top();
        }
        forked.insert(pc, reforks + 1);
        let a = {
            let mut stack = stack.clone();
            let mut scopes = scopes.clone();
            let mut forked = forked.clone();
            self.run(
                protos,
                proto,
                target,
                &mut stack,
                &mut scopes,
                &mut forked,
                call_stack,
                fork_depth + 1,
            )
        };
        let b = self.run(
            protos,
            proto,
            fallthrough,
            stack,
            scopes,
            forked,
            call_stack,
            fork_depth + 1,
        );
        a.join(b)
    }
}

/// Havocs every scope binding after a user function ran: the callee may
/// have captured and reassigned any variable in scope, including the
/// event binding.
fn havoc(scopes: &mut Scopes) {
    for scope in scopes.iter_mut() {
        for v in scope.values_mut() {
            *v = AbsEff::Unknown;
        }
    }
}

/// Applies the effect of one host builtin call to the running path.
/// Returns `false` for names that are not known builtins. The table
/// mirrors the dispatch in `greenweb_engine::host` exactly; every entry
/// over-approximates what that arm records in `CallbackEffects`.
fn apply_builtin(name: &str, args: &[AbsEff], eff: &mut PathEffects) -> bool {
    let s = &mut eff.summary;
    match name {
        // Pure reads (createElement builds a detached node: no tracked
        // effect until something attaches it).
        "getElementById" | "document" | "getAttribute" | "getStyle" | "now" | "elementCount"
        | "createElement" => {}
        "setAttribute" => {
            s.may_dirty = true;
            match args.first() {
                Some(AbsEff::TargetNode) => s.attr_targets.insert(EffectTarget::ListenerSubtree),
                _ => s.attr_targets = TargetSet::Unknown,
            }
        }
        "setStyle" => {
            s.may_dirty = true;
            match args.first() {
                Some(AbsEff::TargetNode) => s.style_targets.insert(EffectTarget::ListenerSubtree),
                _ => s.style_targets = TargetSet::Unknown,
            }
        }
        "appendChild" | "removeChild" | "setText" => {
            s.may_mutate_tree = true;
            s.may_dirty = true;
        }
        "addEventListener" => s.may_add_listener = true,
        "requestAnimationFrame" => {
            s.rafs = s.rafs.map(|n| n.saturating_add(1));
            s.rafs_min += 1;
        }
        "setTimeout" => {
            s.timers = s.timers.map(|n| n.saturating_add(1));
            match args.get(1) {
                // The host clamps the delay at 0, so NaN (which fails
                // `> 0.0`) is also a zero-delay registration.
                Some(AbsEff::Num(d)) if *d > 0.0 => {}
                other => {
                    s.zero_delay_timer = true;
                    // A chain edge needs a *named* callee and a concrete
                    // delay; an unknown delay may be zero (flag above)
                    // but proves nothing.
                    if matches!(other, Some(AbsEff::Num(_))) {
                        if let Some(AbsEff::FnRef(f)) = args.first() {
                            eff.zero_delay_names.insert(f.clone());
                        }
                    }
                }
            }
        }
        "work" => {
            s.work_cycles = match (s.work_cycles, args.first()) {
                (Some(w), Some(AbsEff::Num(n))) => Some(w + n.max(0.0)),
                _ => None,
            };
        }
        "gpuWork" => {
            s.gpu_ms = match (s.gpu_ms, args.first()) {
                (Some(g), Some(AbsEff::Num(n))) => Some(g + n.max(0.0)),
                _ => None,
            };
        }
        "markDirty" => s.may_dirty = true,
        "log" => s.may_log = true,
        "animate" => {
            s.may_animate = true;
            s.may_dirty = true;
            s.animates_min += 1;
        }
        _ => return false,
    }
    true
}

fn pop(stack: &mut Vec<AbsEff>) -> AbsEff {
    stack.pop().unwrap_or(AbsEff::Unknown)
}

fn popn(stack: &mut Vec<AbsEff>, n: usize) -> Vec<AbsEff> {
    let keep = stack.len().saturating_sub(n);
    stack.split_off(keep)
}

fn binary(op: BinaryOp, l: AbsEff, r: AbsEff) -> AbsEff {
    use AbsEff::{Bool, Num};
    match (op, l, r) {
        (BinaryOp::Add, Num(a), Num(b)) => Num(a + b),
        (BinaryOp::Sub, Num(a), Num(b)) => Num(a - b),
        (BinaryOp::Mul, Num(a), Num(b)) => Num(a * b),
        (BinaryOp::Div, Num(a), Num(b)) => Num(a / b),
        (BinaryOp::Rem, Num(a), Num(b)) => Num(a % b),
        (BinaryOp::Lt, Num(a), Num(b)) => Bool(a < b),
        (BinaryOp::Le, Num(a), Num(b)) => Bool(a <= b),
        (BinaryOp::Gt, Num(a), Num(b)) => Bool(a > b),
        (BinaryOp::Ge, Num(a), Num(b)) => Bool(a >= b),
        (BinaryOp::Eq, Num(a), Num(b)) => Bool(a == b),
        (BinaryOp::Ne, Num(a), Num(b)) => Bool(a != b),
        (BinaryOp::Eq, Bool(a), Bool(b)) => Bool(a == b),
        (BinaryOp::Ne, Bool(a), Bool(b)) => Bool(a != b),
        (BinaryOp::Eq, AbsEff::Null, AbsEff::Null) => Bool(true),
        (BinaryOp::Ne, AbsEff::Null, AbsEff::Null) => Bool(false),
        _ => AbsEff::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenweb_script::{compile, parse_program};

    fn summarize_with(scripts: &[String], source: &str) -> EffectSummary {
        let analyzer = EffectAnalyzer::new(scripts);
        let program = parse_program(source).unwrap();
        let compiled = compile(&program).unwrap();
        let handler = CompiledHandler {
            protos: compiled.protos,
            main: compiled.main,
            params: vec!["e".to_string()],
        };
        analyzer.analyze_compiled(&handler)
    }

    fn summarize(source: &str) -> EffectSummary {
        summarize_with(&[], source)
    }

    #[test]
    fn empty_handler_is_pure() {
        let s = summarize("var x = 1 + 2;");
        assert!(s.is_pure(), "{s:?}");
    }

    #[test]
    fn log_only_handler_classifies() {
        let s = summarize("log('hi');");
        assert!(s.is_logs_only(), "{s:?}");
    }

    #[test]
    fn straight_line_counts_are_exact() {
        let s = summarize("work(1000); gpuWork(2); markDirty(); setTimeout(function(){}, 16);");
        assert_eq!(s.work_cycles, Some(1000.0));
        assert_eq!(s.gpu_ms, Some(2.0));
        assert!(s.may_dirty);
        assert_eq!(s.timers, Some(1));
        assert!(!s.zero_delay_timer, "a 16ms timer is not zero-delay");
        assert!(!s.top);
    }

    #[test]
    fn branches_join_to_an_upper_bound() {
        // The cost pass would keep the cheaper arm; the effect pass must
        // keep the union of both.
        let s = summarize(
            "var x = now(); if (x > 5) { work(1000000); markDirty(); } else { work(200); }",
        );
        assert_eq!(s.work_cycles, Some(1_000_000.0));
        assert!(s.may_dirty);
        assert!(!s.top);
    }

    #[test]
    fn guaranteed_raf_survives_branches_only_if_on_every_path() {
        let both = summarize(
            "var x = now(); if (x > 5) { requestAnimationFrame(function(){}); } \
             else { requestAnimationFrame(function(){}); }",
        );
        assert_eq!(both.rafs_min, 1);
        assert_eq!(both.rafs, Some(1));
        let one_sided =
            summarize("var x = now(); if (x > 5) { requestAnimationFrame(function(){}); }");
        assert_eq!(one_sided.rafs_min, 0);
        assert_eq!(one_sided.rafs, Some(1));
    }

    #[test]
    fn target_writes_stay_in_listener_subtree() {
        let s = summarize("setAttribute(e.target, 'class', 'on'); markDirty();");
        assert_eq!(
            s.attr_targets,
            TargetSet::Known([EffectTarget::ListenerSubtree].into_iter().collect())
        );
        assert!(s.supports_targeted_invalidation());
        let unknown = summarize("setAttribute(getElementById('x'), 'class', 'on');");
        assert_eq!(unknown.attr_targets, TargetSet::Unknown);
        assert!(!unknown.supports_targeted_invalidation());
    }

    #[test]
    fn tree_mutation_is_detected() {
        let s = summarize("appendChild(document(), createElement('div'));");
        assert!(s.may_mutate_structure());
        assert!(!s.supports_targeted_invalidation());
    }

    #[test]
    fn counted_loops_multiply_bounds() {
        let s = summarize("for (var i = 0; i < 10; i = i + 1) { work(100); }");
        assert_eq!(s.work_cycles, Some(1000.0));
        assert!(!s.top);
    }

    #[test]
    fn data_dependent_loop_collapses_to_top() {
        let s = summarize("var n = now(); var i = 0; while (i < n) { work(1); i = i + 1; }");
        assert!(s.top, "an uncountable loop cannot keep finite bounds");
    }

    #[test]
    fn method_calls_and_member_writes_are_top() {
        assert!(summarize("var a = [1]; a.push(2);").top);
        assert!(summarize("var o = {}; o.x = 1;").top);
    }

    #[test]
    fn helper_functions_are_inlined_via_the_table() {
        let scripts = vec!["function helper() { markDirty(); work(50); }".to_string()];
        let s = summarize_with(&scripts, "helper(); helper();");
        assert!(s.may_dirty);
        assert_eq!(s.work_cycles, Some(100.0));
        assert!(!s.top);
    }

    #[test]
    fn user_call_havocs_the_event_binding() {
        // After calling user code the `e` binding may have been captured
        // and reassigned; `e.target` must no longer prove subtree
        // containment.
        let scripts = vec!["function shuffle() { }".to_string()];
        let s = summarize_with(
            &scripts,
            "shuffle(); setAttribute(e.target, 'class', 'on');",
        );
        assert_eq!(s.attr_targets, TargetSet::Unknown);
    }

    #[test]
    fn shadowed_builtin_resolves_to_the_script_function() {
        // The cost pass historically resolves `work` to the builtin even
        // when a script function shadows it; an upper bound must follow
        // the runtime's scope chain instead.
        let scripts = vec!["function work(n) { markDirty(); }".to_string()];
        let s = summarize_with(&scripts, "work(5);");
        assert!(s.may_dirty);
        assert_eq!(s.work_cycles, Some(0.0), "no builtin work() runs");
    }

    #[test]
    fn assigned_names_are_poisoned() {
        let scripts = vec![
            "function quiet() { }".to_string(),
            "function other() { quiet = 3; }".to_string(),
        ];
        // `quiet` is reassigned somewhere, so a call to it is
        // unanalyzable even though the declaration is unique.
        let s = summarize_with(&scripts, "quiet();");
        assert!(s.top);
    }

    #[test]
    fn recursion_unbounds_counts_but_not_flags() {
        let scripts = vec!["function f(n) { if (n > 0) { f(n - 1); } work(10); }".to_string()];
        let s = summarize_with(&scripts, "f(3);");
        assert!(!s.top, "recursion alone must not give up entirely");
        assert_eq!(s.work_cycles, None, "per-activation counts are unbounded");
        assert!(!s.may_dirty);
    }

    #[test]
    fn zero_delay_chain_is_detected() {
        let scripts = vec![
            "function pump() { work(100); setTimeout(pump, 0); }".to_string(),
            "function once() { work(100); setTimeout(function(){}, 0); }".to_string(),
        ];
        let chained = summarize_with(&scripts, "setTimeout(pump, 0);");
        assert!(chained.zero_delay_chain, "{chained:?}");
        assert!(chained.zero_delay_timer);
        let unchained = summarize_with(&scripts, "setTimeout(once, 0);");
        assert!(!unchained.zero_delay_chain, "{unchained:?}");
        assert!(unchained.zero_delay_timer);
        let delayed = summarize_with(&scripts, "setTimeout(pump, 50);");
        assert!(
            !delayed.zero_delay_chain,
            "a delayed kickoff schedules no zero-delay edge from the handler"
        );
    }

    #[test]
    fn summary_admits_its_own_concrete_run() {
        // A miniature dynamic⊆static check: the summary the analyzer
        // infers for a handler must admit the effects the engine's host
        // would record for it (spot-checked fields, not a full run).
        let s = summarize("setAttribute(e.target, 'class', 'on'); work(500); markDirty();");
        assert!(!s.top);
        assert!(s.may_dirty);
        assert!(s.work_cycles.unwrap() >= 500.0);
    }
}
