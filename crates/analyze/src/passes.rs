//! Passes 1, 2 and 4: annotation sanity, handler coverage, and platform
//! feasibility.
//!
//! Pass 1 re-uses the *runtime's* cascade resolution
//! ([`AnnotationTable::lookup_entry`]: highest specificity wins, later
//! source order breaks ties) to decide winners, so a rule the analyzer
//! calls shadowed is exactly a rule the runtime would never pick.
//!
//! Pass 4 combines pass-3 lower bounds with the platform's *fastest*
//! configuration (big core at maximum frequency): a target that cannot
//! be met even there is a guaranteed deadline miss, no scheduler can
//! save it. To keep the "guaranteed" claim honest the verdict uses only
//! components that provably under-estimate the simulated run: explicit
//! `work()`/`gpuWork()` payloads, the input IPC charge, the fixed
//! paint/composite stages, and the element-scaled style/layout stages
//! only when no script can shrink the document.

use crate::cost::HandlerCost;
use crate::diag::{Area, Diagnostic, LintCode, Location};
use greenweb::lang::{AnnotationTable, LangError};
use greenweb::qos::QosType;
use greenweb_acmp::{CoreType, Platform, WorkUnit};
use greenweb_dom::{Document, EventType, NodeId};
use greenweb_engine::App;
use std::collections::{BTreeMap, BTreeSet};

/// Pass 1: dead, shadowed, conflicting, and malformed annotations.
pub fn annotation_sanity(
    doc: &Document,
    css_source: &str,
    table: &AnnotationTable,
    errors: &[LangError],
    out: &mut Vec<Diagnostic>,
) {
    for error in errors {
        let (code, property) = match error {
            LangError::UnknownEvent { property, .. } => (LintCode::UnknownQosEvent, property),
            LangError::BadValue { property, .. } => (LintCode::BadQosValue, property),
        };
        out.push(Diagnostic::new(
            code,
            Location::new(Area::Css, property.clone()).locate(css_source, property),
            error.to_string(),
        ));
    }

    let annotations = table.annotations();
    let events: BTreeSet<EventType> = annotations.iter().map(|a| a.event).collect();
    let elements: Vec<NodeId> = doc.elements().collect();

    // Who matches whom, and who ever wins a cascade lookup. Winners are
    // decided by the same lookup_entry the runtime uses.
    let mut match_counts = vec![0usize; annotations.len()];
    let mut winners = vec![false; annotations.len()];
    let mut conflicts: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &node in &elements {
        for &event in &events {
            let matching: Vec<usize> = annotations
                .iter()
                .enumerate()
                .filter(|(_, a)| a.event == event && a.selector.matches(doc, node))
                .map(|(i, _)| i)
                .collect();
            for &i in &matching {
                match_counts[i] += 1;
            }
            if matching.is_empty() {
                continue;
            }
            let (winner, _) = table
                .lookup_entry(doc, node, event)
                .expect("a matching annotation exists");
            winners[winner] = true;
            // Equal-specificity rules that disagree with the winner on
            // the spec: source order silently decides (GW014).
            let top = annotations[winner].selector.specificity();
            for &i in &matching {
                if i != winner
                    && annotations[i].selector.specificity() == top
                    && annotations[i].spec != annotations[winner].spec
                {
                    conflicts.insert((i, winner));
                }
            }
        }
    }

    let conflicted: BTreeSet<usize> = conflicts.iter().map(|&(loser, _)| loser).collect();
    for (i, a) in annotations.iter().enumerate() {
        let selector = a.selector.to_string();
        let context = format!("{selector} on{}-qos", a.event);
        if match_counts[i] == 0 {
            out.push(Diagnostic::new(
                LintCode::DeadAnnotation,
                Location::new(Area::Css, context).locate(css_source, &selector),
                format!(
                    "`{selector}` matches no element; the on{}-qos annotation is dead",
                    a.event
                ),
            ));
        } else if !winners[i] && !conflicted.contains(&i) {
            out.push(Diagnostic::new(
                LintCode::ShadowedAnnotation,
                Location::new(Area::Css, context).locate(css_source, &selector),
                format!(
                    "`{selector}` matches elements but never wins the on{}-qos cascade; \
                     a more specific or later rule always shadows it",
                    a.event
                ),
            ));
        }
    }
    for (loser, winner) in conflicts {
        let l = &annotations[loser];
        let w = &annotations[winner];
        let selector = l.selector.to_string();
        out.push(Diagnostic::new(
            LintCode::ConflictingAnnotations,
            Location::new(Area::Css, format!("{selector} on{}-qos", l.event))
                .locate(css_source, &selector),
            format!(
                "`{selector}` declares `{}` but the equally specific, later `{}` declares `{}` \
                 for the same elements and event; source order silently decides",
                l.spec, w.selector, w.spec
            ),
        ));
    }
}

/// A human-readable handle for a DOM element in diagnostics.
pub fn describe_element(doc: &Document, node: NodeId) -> String {
    match doc.element(node) {
        Some(e) => match (e.id(), e.classes().next()) {
            (Some(id), _) => format!("{}#{id}", e.tag()),
            (None, Some(class)) => format!("{}.{class}", e.tag()),
            (None, None) => e.tag().to_string(),
        },
        None => format!("node {node:?}"),
    }
}

/// One registered user-interaction listener target, with its annotation
/// lookup result attached.
#[derive(Debug, Clone)]
pub struct ListenerInfo {
    /// The DOM node carrying the listener.
    pub node: NodeId,
    /// The listened-for event.
    pub event: EventType,
    /// Whether [`AnnotationTable::lookup`] resolves a spec for it.
    pub covered: bool,
}

/// Pass 2: registered handlers with no reachable annotation, cross-checked
/// against AUTOGREEN's static plan ([`greenweb::StaticPlan`]).
pub fn handler_coverage(
    doc: &Document,
    html: &str,
    listeners: &[ListenerInfo],
    plan: &greenweb::StaticPlan,
    out: &mut Vec<Diagnostic>,
) {
    for info in listeners {
        if info.covered {
            continue;
        }
        let element = describe_element(doc, info.node);
        let needle = doc
            .element(info.node)
            .and_then(|e| e.id())
            .map(str::to_string)
            .unwrap_or_default();
        let location = || Location::new(Area::Html, element.clone()).locate(html, &needle);
        out.push(Diagnostic::new(
            LintCode::UncoveredHandler,
            location(),
            format!(
                "`{element}` handles on{} but no annotation reaches it; \
                 the scheduler treats its responses as best-effort",
                info.event
            ),
        ));
        if let Some(candidate) = plan
            .candidates
            .iter()
            .find(|c| c.node == info.node && c.event == info.event)
        {
            out.push(Diagnostic::new(
                LintCode::AutoAnnotatable,
                location(),
                format!(
                    "AUTOGREEN can annotate it: `{} {{ on{}-qos: ...; }}`",
                    candidate.selector, info.event
                ),
            ));
        } else if let Some(skip) = plan
            .skipped
            .iter()
            .find(|s| s.node == Some(info.node) && s.event == info.event)
        {
            out.push(Diagnostic::new(
                LintCode::AutoGreenSkip,
                location(),
                format!("AUTOGREEN would skip it too: {}", skip.reason),
            ));
        }
    }
}

/// One statically unmeetable QoS target (a GW040 finding), in structured
/// form so the dynamic cross-validation suite can reproduce it.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityFinding {
    /// The `id` attribute of the annotated element, when it has one (the
    /// handle a trace can target).
    pub node_id: Option<String>,
    /// The element descriptor used in the diagnostic.
    pub element: String,
    /// The annotated event.
    pub event: EventType,
    /// The QoS type of the winning annotation.
    pub qos_type: QosType,
    /// The guaranteed lower bound of the response, ms, at peak.
    pub bound_ms: f64,
    /// The annotation's imperceptible target T_I, ms.
    pub imperceptible_ms: f64,
    /// The annotation's usable target T_U, ms.
    pub usable_ms: f64,
}

/// Pass 4: flags annotations whose targets are below the guaranteed cost
/// of their handler even at the platform's peak configuration. Returns
/// the GW040 findings in structured form.
#[allow(clippy::too_many_arguments)]
pub fn platform_feasibility(
    app: &App,
    doc: &Document,
    table: &AnnotationTable,
    listeners: &[ListenerInfo],
    costs: &BTreeMap<(NodeId, EventType), HandlerCost>,
    platform: &Platform,
    out: &mut Vec<Diagnostic>,
) -> Vec<FeasibilityFinding> {
    let peak = platform.peak();
    let ipc = platform.cluster(CoreType::Big).ipc;
    let rate_per_ms = WorkUnit::rate(peak, ipc) / 1_000.0;
    let elements = doc.elements().count();
    // Scripts that can detach nodes may shrink the document between load
    // and the judged frame, so the element-scaled pipeline term is only a
    // lower bound when no such call appears anywhere. (A textual check
    // over-approximates reachability, which errs on the sound side.)
    let dom_may_shrink = app
        .scripts
        .iter()
        .any(|s| s.contains("removeChild") || s.contains("setText"));
    let pipeline_ms = pipeline_floor_ms(app, elements, rate_per_ms, dom_may_shrink);

    let mut findings = Vec::new();
    for info in listeners {
        let Some(spec) = table.lookup(doc, info.node, info.event) else {
            continue;
        };
        let Some(cost) = costs.get(&(info.node, info.event)) else {
            continue;
        };
        if cost.fuel_exhausted {
            // Termination is unknown; no honest verdict exists.
            continue;
        }
        let callback_ms = cost.guaranteed_ms(rate_per_ms) + app.cost.input_ipc_ms;
        let bound_ms = callback_ms + pipeline_ms;
        let element = describe_element(doc, info.node);
        let context = format!("{element} on{}", info.event);
        let location = Location::new(Area::App, context.clone());
        let target = spec.target;
        if bound_ms > target.usable_ms {
            let (code, verb) = match spec.qos_type {
                QosType::Single => (LintCode::UnsatisfiableTarget, "usable target"),
                QosType::Continuous => (LintCode::ContinuousOverBudget, "per-frame usable target"),
            };
            out.push(Diagnostic::new(
                code,
                location,
                format!(
                    "`{element}` on{}: response is guaranteed to take >= {bound_ms:.1} ms even at \
                     peak (big core, max frequency), above the {verb} of {:.1} ms",
                    info.event, target.usable_ms
                ),
            ));
            if spec.qos_type == QosType::Single {
                findings.push(FeasibilityFinding {
                    node_id: doc
                        .element(info.node)
                        .and_then(|e| e.id())
                        .map(str::to_string),
                    element,
                    event: info.event,
                    qos_type: spec.qos_type,
                    bound_ms,
                    imperceptible_ms: target.imperceptible_ms,
                    usable_ms: target.usable_ms,
                });
            }
        } else if bound_ms > target.imperceptible_ms {
            out.push(Diagnostic::new(
                LintCode::InfeasibleImperceptible,
                location,
                format!(
                    "`{element}` on{}: response is guaranteed to take >= {bound_ms:.1} ms at peak, \
                     above the imperceptible target of {:.1} ms; only the usable scenario can be met",
                    info.event, target.imperceptible_ms
                ),
            ));
        }
    }
    findings
}

/// The guaranteed per-frame pipeline time at peak, in milliseconds.
fn pipeline_floor_ms(app: &App, elements: usize, rate_per_ms: f64, dom_may_shrink: bool) -> f64 {
    let m = &app.cost;
    // Surges only ever multiply a frame's cost *up* in the bundled cost
    // models, but a factor below one would make some frames cheaper, so
    // the floor takes the minimum multiplier.
    let mult = if m.surge_every > 0 {
        m.surge_factor.min(1.0)
    } else {
        1.0
    };
    let element_cycles = if dom_may_shrink {
        0.0
    } else {
        (m.style_cycles_per_element + m.layout_cycles_per_element) * elements as f64
    };
    let cycles = (element_cycles + m.paint_cycles + m.composite_cycles) * mult;
    cycles / rate_per_ms + m.composite_independent_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenweb_css::parse_stylesheet;
    use greenweb_dom::parse_html;

    fn sanity(html: &str, css: &str) -> Vec<Diagnostic> {
        let doc = parse_html(html).unwrap();
        let sheet = parse_stylesheet(css).unwrap();
        let (table, errors) = AnnotationTable::from_stylesheet_lossy(&sheet);
        let mut out = Vec::new();
        annotation_sanity(&doc, css, &table, &errors, &mut out);
        out
    }

    #[test]
    fn dead_annotation_detected() {
        let out = sanity(
            "<div id='real'></div>",
            "#ghost:QoS { onclick-qos: single, short; }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, LintCode::DeadAnnotation);
        assert_eq!(out[0].location.line, Some(1));
    }

    #[test]
    fn shadowed_annotation_detected() {
        let out = sanity(
            "<div id='x' class='c'></div>",
            ".c:QoS { onclick-qos: single, long; }\n#x:QoS { onclick-qos: single, short; }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, LintCode::ShadowedAnnotation);
        assert!(out[0].render().contains(".c:QoS"));
    }

    #[test]
    fn conflicting_annotations_detected() {
        let out = sanity(
            "<div id='x'></div>",
            "#x:QoS { onclick-qos: single, short; }\n#x:QoS { onclick-qos: single, long; }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, LintCode::ConflictingAnnotations);
    }

    #[test]
    fn equal_duplicates_do_not_conflict() {
        let out = sanity(
            "<div id='x'></div>",
            "#x:QoS { onclick-qos: single, short; }\n#x:QoS { onclick-qos: single, short; }",
        );
        // The earlier duplicate never wins but declares the same spec:
        // harmless, so only the shadow warning fires.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, LintCode::ShadowedAnnotation);
    }

    #[test]
    fn malformed_values_reported() {
        let out = sanity(
            "<div id='x'></div>",
            "#x:QoS { onhover-qos: continuous; }\n#x:QoS { onclick-qos: sideways; }",
        );
        let codes: Vec<LintCode> = out.iter().map(|d| d.code).collect();
        assert!(codes.contains(&LintCode::UnknownQosEvent));
        assert!(codes.contains(&LintCode::BadQosValue));
    }

    #[test]
    fn clean_annotations_produce_nothing() {
        let out = sanity(
            "<div id='x'></div>",
            "#x:QoS { onclick-qos: single, short; }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
