//! Pass 3: bytecode cost bounds.
//!
//! Each registered handler closure is compiled to the stack-machine
//! bytecode ([`greenweb_script::compiler::Op`]) and explored by an
//! abstract interpreter over the CFG formed by the `Jump`/`JumpIfFalse`/
//! peek-jump instructions. The abstract domain is concrete-or-⊤: numbers,
//! booleans, and closures propagate exactly, so *counted* loops
//! (`for (i = 0; i < n; i = i + 1)`) simply unroll and their `work()` /
//! `gpuWork()` payloads accumulate; anything data-dependent evaluates to
//! ⊤ (Unknown). At a branch on ⊤ both successors are explored and the
//! *cheaper* one is kept, which makes every reported figure a **lower
//! bound** on the work any real execution performs. A back edge guarded
//! by a ⊤ condition is an unbounded loop: it is reported (GW031) and the
//! exploration takes the exit path, i.e. the loop contributes nothing to
//! the bound — ⊤, not an error.

use crate::{CompiledHandler, ScriptUnit};
use greenweb_script::compiler::{Const, Op, Proto};
use greenweb_script::value::{Closure, VmClosure};
use greenweb_script::{compile, BinaryOp, Program, Stmt, UnaryOp, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Exploration fuel: the total number of abstract steps one handler may
/// take. Counted workload loops are a few thousand iterations at most;
/// the cap only bites on runaway (effectively unbounded) concrete loops.
pub(crate) const FUEL: u64 = 400_000;
/// Maximum nesting of ⊤-condition forks along one path.
pub(crate) const MAX_FORKS: u32 = 32;
/// Maximum abstract call depth.
pub(crate) const MAX_CALLS: u32 = 16;
/// How many times one branch pc may fork along a single path before it
/// is declared a loop with an uncountable bound. Small counted loops
/// containing data-dependent `if`s stay precisely explored; anything
/// longer is cut off as unbounded.
pub(crate) const MAX_REFORKS: u32 = 8;

/// The statically derived cost lower bound of one handler.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HandlerCost {
    /// Charged evaluation steps along the cheapest path, in tick-weight
    /// units — the same per-instruction weights the engine's VM charges
    /// against `RunBudget`, so this figure is directly comparable to
    /// `Span.ops`. Still informational for feasibility verdicts (it is a
    /// lower bound over one path, not a guarantee).
    pub ops: f64,
    /// Explicit `work(cycles)` guaranteed on every path.
    pub work_cycles: f64,
    /// Explicit `gpuWork(ms)` guaranteed on every path.
    pub gpu_ms: f64,
    /// Number of distinct loops whose bound is not statically countable.
    pub unbounded_loops: usize,
    /// The exploration ran out of fuel; the figures are still lower
    /// bounds, but termination behaviour is unknown, so feasibility
    /// verdicts must not be drawn from them.
    pub fuel_exhausted: bool,
}

impl HandlerCost {
    /// Sums two handler costs (multiple callbacks on one target all run).
    pub fn plus(&self, other: &HandlerCost) -> HandlerCost {
        HandlerCost {
            ops: self.ops + other.ops,
            work_cycles: self.work_cycles + other.work_cycles,
            gpu_ms: self.gpu_ms + other.gpu_ms,
            unbounded_loops: self.unbounded_loops + other.unbounded_loops,
            fuel_exhausted: self.fuel_exhausted || other.fuel_exhausted,
        }
    }

    /// The frequency-scalable + independent time guaranteed at an
    /// execution rate of `cycles_per_ms`, in milliseconds.
    pub fn guaranteed_ms(&self, cycles_per_ms: f64) -> f64 {
        self.work_cycles / cycles_per_ms + self.gpu_ms
    }
}

/// An abstract value: concrete where the program is concrete, ⊤ where it
/// depends on data the analyzer cannot see.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AbsVal {
    Num(f64),
    Bool(bool),
    Null,
    /// A closure over proto `idx` of the *current* prototype table.
    Closure(usize),
    Unknown,
}

impl AbsVal {
    fn truthy(self) -> Option<bool> {
        match self {
            AbsVal::Num(n) => Some(n != 0.0 && !n.is_nan()),
            AbsVal::Bool(b) => Some(b),
            AbsVal::Null => Some(false),
            AbsVal::Closure(_) => Some(true),
            AbsVal::Unknown => None,
        }
    }
}

/// Cost accumulated along one abstract execution path.
#[derive(Debug, Clone, Copy, Default)]
struct PathCost {
    ops: f64,
    work_cycles: f64,
    gpu_ms: f64,
}

impl PathCost {
    fn plus(self, o: PathCost) -> PathCost {
        PathCost {
            ops: self.ops + o.ops,
            work_cycles: self.work_cycles + o.work_cycles,
            gpu_ms: self.gpu_ms + o.gpu_ms,
        }
    }

    /// Orders paths by guaranteed time (the feasibility metric), with op
    /// count as the tie-break. `rate` is in cycles per millisecond.
    fn cheaper(self, o: PathCost, rate: f64) -> PathCost {
        let a = (self.work_cycles / rate + self.gpu_ms, self.ops);
        let b = (o.work_cycles / rate + o.gpu_ms, o.ops);
        if a <= b {
            self
        } else {
            o
        }
    }
}

/// A resolved top-level script function: which compiled program, which
/// prototype.
#[derive(Debug, Clone)]
pub(crate) struct FnRef {
    pub(crate) protos: Arc<Vec<Proto>>,
    pub(crate) proto: usize,
}

/// Uniquely resolvable top-level functions by name, shared by the cost
/// and effect passes. A name declared more than once (across scripts or
/// shadowed by a nested function of the same name) maps to `None`: both
/// passes must treat calls to it as unresolvable.
pub(crate) type FnTable = HashMap<String, Option<FnRef>>;

/// Builds the shared function table from pre-parsed script units.
pub(crate) fn build_fn_table(units: &[ScriptUnit]) -> FnTable {
    let mut functions = FnTable::new();
    for unit in units {
        let (Some(program), Some(compiled)) = (&unit.program, &unit.compiled) else {
            continue;
        };
        for stmt in &program.body {
            let Stmt::FunctionDecl { name, .. } = stmt else {
                continue;
            };
            let matching: Vec<usize> = compiled
                .protos
                .iter()
                .enumerate()
                .filter(|(_, p)| p.name == *name)
                .map(|(i, _)| i)
                .collect();
            let entry = if matching.len() == 1 {
                Some(FnRef {
                    protos: Arc::clone(&compiled.protos),
                    proto: matching[0],
                })
            } else {
                None
            };
            // Redeclaration anywhere makes the binding ambiguous.
            match functions.entry(name.clone()) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(entry);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    o.insert(None);
                }
            }
        }
    }
    functions
}

/// The cost-bound analyzer for one application's scripts.
#[derive(Debug, Default)]
pub struct CostAnalyzer {
    /// Uniquely resolvable top-level functions, by name (see [`FnTable`]).
    /// Calls to ambiguous names contribute nothing, which keeps the
    /// bound sound.
    functions: FnTable,
    /// Nominal execution rate (cycles per ms) used only to order paths.
    rate_cycles_per_ms: f64,
}

impl CostAnalyzer {
    /// Builds the function table from the app's setup scripts. Scripts
    /// that fail to parse or compile are skipped (the front-end pass has
    /// already reported them).
    pub fn new(scripts: &[String], rate_cycles_per_ms: f64) -> Self {
        Self::from_units(&crate::parse_units(scripts), rate_cycles_per_ms)
    }

    /// Like [`CostAnalyzer::new`], from pre-parsed script units shared
    /// with the effect pass.
    pub(crate) fn from_units(units: &[ScriptUnit], rate_cycles_per_ms: f64) -> Self {
        CostAnalyzer {
            functions: build_fn_table(units),
            rate_cycles_per_ms: rate_cycles_per_ms.max(1.0),
        }
    }

    /// Analyzes a handler compiled once through the shared
    /// [`crate::HandlerCache`].
    pub(crate) fn analyze_compiled(&self, handler: &CompiledHandler) -> HandlerCost {
        self.explore_entry(&handler.protos, handler.main)
    }

    /// Analyzes one registered listener callback. Returns `None` when the
    /// value is not a function or its body fails to compile.
    pub fn analyze_callback(&self, callback: &Value) -> Option<HandlerCost> {
        match callback {
            Value::Function(closure) => self.analyze_closure(closure),
            Value::VmFunction(vm) => Some(self.analyze_vm_closure(vm)),
            _ => None,
        }
    }

    /// Analyzes a tree-walking closure by compiling its body.
    pub fn analyze_closure(&self, closure: &Closure) -> Option<HandlerCost> {
        let program = Program {
            body: closure.body.as_ref().clone(),
        };
        let compiled = compile(&program).ok()?;
        Some(self.explore_entry(&compiled.protos, compiled.main))
    }

    /// Analyzes an already-compiled closure.
    pub fn analyze_vm_closure(&self, closure: &VmClosure) -> HandlerCost {
        self.explore_entry(&closure.protos, closure.proto)
    }

    fn explore_entry(&self, protos: &Arc<Vec<Proto>>, main: usize) -> HandlerCost {
        let mut explorer = Explorer {
            analyzer: self,
            fuel: FUEL,
            fuel_exhausted: false,
            unbounded: HashSet::new(),
        };
        let mut call_stack = Vec::new();
        let cost = explorer.explore_proto(protos, main, &mut call_stack);
        HandlerCost {
            ops: cost.ops,
            work_cycles: cost.work_cycles,
            gpu_ms: cost.gpu_ms,
            unbounded_loops: explorer.unbounded.len(),
            fuel_exhausted: explorer.fuel_exhausted,
        }
    }
}

/// Identity of a prototype across programs: table pointer + index.
type ProtoKey = (usize, usize);

struct Explorer<'a> {
    analyzer: &'a CostAnalyzer,
    fuel: u64,
    fuel_exhausted: bool,
    /// `(proto, pc)` of every ⊤-guarded back edge seen (distinct loops).
    unbounded: HashSet<(usize, u32)>,
}

type Scopes = Vec<HashMap<u32, AbsVal>>;

/// Per-path fork counts, keyed by branch pc.
type Forked = HashMap<u32, u32>;

impl Explorer<'_> {
    fn explore_proto(
        &mut self,
        protos: &Arc<Vec<Proto>>,
        index: usize,
        call_stack: &mut Vec<ProtoKey>,
    ) -> PathCost {
        let key: ProtoKey = (Arc::as_ptr(protos) as usize, index);
        // Recursion (or too-deep call chains) contribute nothing: sound
        // for a lower bound.
        if call_stack.contains(&key) || call_stack.len() >= MAX_CALLS as usize {
            return PathCost::default();
        }
        let Some(proto) = protos.get(index) else {
            return PathCost::default();
        };
        call_stack.push(key);
        let mut stack = Vec::new();
        let mut scopes: Scopes = vec![HashMap::new()];
        let cost = self.run(
            protos,
            proto,
            0,
            &mut stack,
            &mut scopes,
            &mut Forked::new(),
            call_stack,
            0,
        );
        call_stack.pop();
        cost
    }

    /// Abstractly executes `proto` from `pc` to a `Return`/fall-off,
    /// returning the cost of the cheapest completion.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        protos: &Arc<Vec<Proto>>,
        proto: &Proto,
        mut pc: u32,
        stack: &mut Vec<AbsVal>,
        scopes: &mut Scopes,
        forked: &mut Forked,
        call_stack: &mut Vec<ProtoKey>,
        fork_depth: u32,
    ) -> PathCost {
        let mut cost = PathCost::default();
        loop {
            if self.fuel == 0 {
                self.fuel_exhausted = true;
                return cost;
            }
            self.fuel -= 1;
            let Some(op) = proto.code.get(pc as usize) else {
                return cost; // fell off the end: implicit return
            };
            // Charge the instruction's tick weight — the same per-op cost
            // the engine's VM charges against `RunBudget` — so the lint's
            // op figures are in engine units (weight 1 when a hostile
            // proto carries no tick table).
            cost.ops += f64::from(proto.ticks.get(pc as usize).copied().unwrap_or(1));
            let mut next = pc + 1;
            match *op {
                Op::Const(i) => stack.push(match proto.consts.get(i as usize) {
                    Some(Const::Number(n)) => AbsVal::Num(*n),
                    Some(Const::Bool(b)) => AbsVal::Bool(*b),
                    Some(Const::Null) => AbsVal::Null,
                    Some(Const::Str(_)) | None => AbsVal::Unknown,
                }),
                Op::GetVar(i) => {
                    let v = scopes
                        .iter()
                        .rev()
                        .find_map(|s| s.get(&i).copied())
                        .unwrap_or(AbsVal::Unknown);
                    stack.push(v);
                }
                Op::SetVar(i) => {
                    let v = pop(stack);
                    match scopes.iter_mut().rev().find(|s| s.contains_key(&i)) {
                        Some(scope) => {
                            scope.insert(i, v);
                        }
                        None => {
                            // Assignment to a captured/global variable the
                            // analyzer cannot see; remember it locally so
                            // later reads at least agree within this path.
                            if let Some(first) = scopes.first_mut() {
                                first.insert(i, v);
                            }
                        }
                    }
                }
                Op::DeclVar(i) => {
                    let v = pop(stack);
                    if let Some(last) = scopes.last_mut() {
                        last.insert(i, v);
                    }
                }
                Op::Pop => {
                    pop(stack);
                }
                Op::Dup => {
                    let v = stack.last().copied().unwrap_or(AbsVal::Unknown);
                    stack.push(v);
                }
                Op::PushScope => scopes.push(HashMap::new()),
                Op::PopScope => {
                    if scopes.len() > 1 {
                        scopes.pop();
                    }
                }
                Op::Binary(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    stack.push(binary(op, l, r));
                }
                Op::Unary(op) => {
                    let v = pop(stack);
                    stack.push(match (op, v) {
                        (UnaryOp::Neg, AbsVal::Num(n)) => AbsVal::Num(-n),
                        (UnaryOp::Not, v) => match v.truthy() {
                            Some(b) => AbsVal::Bool(!b),
                            None => AbsVal::Unknown,
                        },
                        _ => AbsVal::Unknown,
                    });
                }
                Op::Jump(t) => next = t,
                Op::JumpIfFalse(t) => {
                    let cond = pop(stack);
                    match cond.truthy() {
                        Some(true) => {}
                        Some(false) => next = t,
                        None => {
                            return cost.plus(self.fork(
                                protos, proto, pc, t, next, stack, scopes, forked, call_stack,
                                fork_depth,
                            ))
                        }
                    }
                }
                Op::JumpIfFalsePeek(t) => {
                    let cond = stack.last().copied().unwrap_or(AbsVal::Unknown);
                    match cond.truthy() {
                        Some(true) => {}
                        Some(false) => next = t,
                        None => {
                            return cost.plus(self.fork(
                                protos, proto, pc, t, next, stack, scopes, forked, call_stack,
                                fork_depth,
                            ))
                        }
                    }
                }
                Op::JumpIfTruePeek(t) => {
                    let cond = stack.last().copied().unwrap_or(AbsVal::Unknown);
                    match cond.truthy() {
                        Some(true) => next = t,
                        Some(false) => {}
                        None => {
                            return cost.plus(self.fork(
                                protos, proto, pc, t, next, stack, scopes, forked, call_stack,
                                fork_depth,
                            ))
                        }
                    }
                }
                Op::MakeArray(n) => {
                    popn(stack, n as usize);
                    stack.push(AbsVal::Unknown);
                }
                Op::MakeObject { count, .. } => {
                    popn(stack, count as usize);
                    stack.push(AbsVal::Unknown);
                }
                Op::MakeClosure(i) => stack.push(AbsVal::Closure(i as usize)),
                Op::CallName { name, argc } => {
                    let args = popn(stack, argc as usize);
                    let fname = proto.names.get(name as usize).map(String::as_str);
                    // The compiler interns every occurrence of a name at
                    // the same index, so scope bindings are keyed by it.
                    let local = scopes.iter().rev().find_map(|s| s.get(&name).copied());
                    match (local, fname) {
                        (Some(AbsVal::Closure(ci)), _) => {
                            cost = cost.plus(self.explore_proto(protos, ci, call_stack));
                            stack.push(AbsVal::Unknown);
                        }
                        (Some(_), _) => stack.push(AbsVal::Unknown),
                        (None, Some("work")) => {
                            if let Some(AbsVal::Num(n)) = args.first() {
                                cost.work_cycles += n.max(0.0);
                            }
                            stack.push(AbsVal::Null);
                        }
                        (None, Some("gpuWork")) => {
                            if let Some(AbsVal::Num(n)) = args.first() {
                                cost.gpu_ms += n.max(0.0);
                            }
                            stack.push(AbsVal::Null);
                        }
                        (None, Some(f)) => {
                            if let Some(Some(fref)) =
                                self.analyzer.functions.get(f).map(Option::as_ref)
                            {
                                let protos = Arc::clone(&fref.protos);
                                let idx = fref.proto;
                                cost = cost.plus(self.explore_proto(&protos, idx, call_stack));
                            }
                            stack.push(AbsVal::Unknown);
                        }
                        (None, None) => stack.push(AbsVal::Unknown),
                    }
                }
                Op::CallValue { argc } => {
                    popn(stack, argc as usize);
                    let callee = pop(stack);
                    if let AbsVal::Closure(ci) = callee {
                        cost = cost.plus(self.explore_proto(protos, ci, call_stack));
                    }
                    stack.push(AbsVal::Unknown);
                }
                Op::CallMethod { argc, .. } => {
                    popn(stack, argc as usize);
                    pop(stack);
                    stack.push(AbsVal::Unknown);
                }
                Op::CallMath { argc, .. } => {
                    popn(stack, argc as usize);
                    stack.push(AbsVal::Unknown);
                }
                Op::GetMember(_) => {
                    pop(stack);
                    stack.push(AbsVal::Unknown);
                }
                Op::SetMember(_) => {
                    pop(stack);
                    pop(stack);
                }
                Op::GetIndex => {
                    pop(stack);
                    pop(stack);
                    stack.push(AbsVal::Unknown);
                }
                Op::SetIndex => {
                    popn(stack, 3);
                }
                Op::Return => return cost,
            }
            pc = next;
        }
    }

    /// Explores both successors of a branch whose condition is ⊤ and
    /// keeps the cheaper completion. A repeated fork at the same `pc`
    /// along one path is a loop with an uncountable bound: it is recorded
    /// as unbounded and resolved by taking the exit edge (the farther
    /// target), so the loop body contributes nothing more.
    #[allow(clippy::too_many_arguments)]
    fn fork(
        &mut self,
        protos: &Arc<Vec<Proto>>,
        proto: &Proto,
        pc: u32,
        target: u32,
        fallthrough: u32,
        stack: &mut Vec<AbsVal>,
        scopes: &mut Scopes,
        forked: &mut Forked,
        call_stack: &mut Vec<ProtoKey>,
        fork_depth: u32,
    ) -> PathCost {
        let reforks = forked.get(&pc).copied().unwrap_or(0);
        if reforks >= MAX_REFORKS {
            self.unbounded.insert((proto as *const Proto as usize, pc));
            let exit = target.max(fallthrough);
            return self.run(
                protos, proto, exit, stack, scopes, forked, call_stack, fork_depth,
            );
        }
        if fork_depth >= MAX_FORKS {
            // Give up on the remainder of this path: 0 is a sound bound.
            return PathCost::default();
        }
        forked.insert(pc, reforks + 1);
        let a = {
            let mut stack = stack.clone();
            let mut scopes = scopes.clone();
            let mut forked = forked.clone();
            self.run(
                protos,
                proto,
                target,
                &mut stack,
                &mut scopes,
                &mut forked,
                call_stack,
                fork_depth + 1,
            )
        };
        let b = self.run(
            protos,
            proto,
            fallthrough,
            stack,
            scopes,
            forked,
            call_stack,
            fork_depth + 1,
        );
        a.cheaper(b, self.analyzer.rate_cycles_per_ms)
    }
}

fn pop(stack: &mut Vec<AbsVal>) -> AbsVal {
    stack.pop().unwrap_or(AbsVal::Unknown)
}

fn popn(stack: &mut Vec<AbsVal>, n: usize) -> Vec<AbsVal> {
    let keep = stack.len().saturating_sub(n);
    stack.split_off(keep)
}

fn binary(op: BinaryOp, l: AbsVal, r: AbsVal) -> AbsVal {
    use AbsVal::{Bool, Num};
    match (op, l, r) {
        (BinaryOp::Add, Num(a), Num(b)) => Num(a + b),
        (BinaryOp::Sub, Num(a), Num(b)) => Num(a - b),
        (BinaryOp::Mul, Num(a), Num(b)) => Num(a * b),
        (BinaryOp::Div, Num(a), Num(b)) => Num(a / b),
        (BinaryOp::Rem, Num(a), Num(b)) => Num(a % b),
        (BinaryOp::Lt, Num(a), Num(b)) => Bool(a < b),
        (BinaryOp::Le, Num(a), Num(b)) => Bool(a <= b),
        (BinaryOp::Gt, Num(a), Num(b)) => Bool(a > b),
        (BinaryOp::Ge, Num(a), Num(b)) => Bool(a >= b),
        (BinaryOp::Eq, Num(a), Num(b)) => Bool(a == b),
        (BinaryOp::Ne, Num(a), Num(b)) => Bool(a != b),
        (BinaryOp::Eq, Bool(a), Bool(b)) => Bool(a == b),
        (BinaryOp::Ne, Bool(a), Bool(b)) => Bool(a != b),
        (BinaryOp::Eq, AbsVal::Null, AbsVal::Null) => Bool(true),
        (BinaryOp::Ne, AbsVal::Null, AbsVal::Null) => Bool(false),
        _ => AbsVal::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenweb_script::parse_program;

    fn handler(source: &str) -> HandlerCost {
        // Wrap the body as a parsed closure the way the browser stores
        // registered listeners.
        let program = parse_program(source).unwrap();
        let analyzer = CostAnalyzer::new(&[], 3.6e6);
        let compiled = compile(&program).unwrap();
        analyzer.explore_entry(&compiled.protos, compiled.main)
    }

    #[test]
    fn straight_line_work_counts() {
        let c = handler("work(1000000); gpuWork(2);");
        assert_eq!(c.work_cycles, 1_000_000.0);
        assert_eq!(c.gpu_ms, 2.0);
        assert_eq!(c.unbounded_loops, 0);
        assert!(!c.fuel_exhausted);
    }

    #[test]
    fn counted_loop_unrolls() {
        let c = handler("for (var i = 0; i < 10; i = i + 1) { work(5000); }");
        assert_eq!(c.work_cycles, 50_000.0);
    }

    #[test]
    fn branch_takes_cheaper_side() {
        // The condition is data-dependent (⊤): only the cheaper arm may
        // be promised.
        let c = handler("var x = now(); if (x > 5) { work(1000000); } else { work(200); }");
        assert_eq!(c.work_cycles, 200.0);
    }

    #[test]
    fn unguarded_else_promises_nothing() {
        let c = handler("var x = now(); if (x > 5) { work(1000000); }");
        assert_eq!(c.work_cycles, 0.0);
        assert_eq!(c.unbounded_loops, 0);
    }

    #[test]
    fn data_dependent_loop_is_unbounded() {
        let c = handler("var n = now(); var i = 0; while (i < n) { work(1000); i = i + 1; }");
        assert_eq!(c.unbounded_loops, 1);
        // ⊤ loops contribute nothing to the lower bound.
        assert_eq!(c.work_cycles, 0.0);
        assert!(!c.fuel_exhausted);
    }

    #[test]
    fn helper_functions_are_inlined() {
        let scripts = vec!["function heavy() { work(70000); }".to_string()];
        let analyzer = CostAnalyzer::new(&scripts, 3.6e6);
        let program = parse_program("heavy(); heavy();").unwrap();
        let compiled = compile(&program).unwrap();
        let c = analyzer.explore_entry(&compiled.protos, compiled.main);
        assert_eq!(c.work_cycles, 140_000.0);
    }

    #[test]
    fn recursion_terminates_and_promises_zero() {
        let scripts = vec!["function f() { f(); work(10); }".to_string()];
        let analyzer = CostAnalyzer::new(&scripts, 3.6e6);
        let program = parse_program("f();").unwrap();
        let compiled = compile(&program).unwrap();
        let c = analyzer.explore_entry(&compiled.protos, compiled.main);
        // The outer call is explored once; the inner recursive call is
        // cut off.
        assert_eq!(c.work_cycles, 10.0);
        assert!(!c.fuel_exhausted);
    }

    #[test]
    fn deferred_callbacks_do_not_count() {
        let c = handler("setTimeout(function() { work(9000000); }, 5); work(100);");
        assert_eq!(c.work_cycles, 100.0);
    }

    #[test]
    fn infinite_concrete_loop_exhausts_fuel() {
        let c = handler("while (true) { work(1); }");
        assert!(c.fuel_exhausted);
    }

    #[test]
    fn duplicate_function_names_resolve_to_nothing() {
        let scripts = vec![
            "function f() { work(100); }".to_string(),
            "function f() { work(900); }".to_string(),
        ];
        let analyzer = CostAnalyzer::new(&scripts, 3.6e6);
        let program = parse_program("f();").unwrap();
        let compiled = compile(&program).unwrap();
        let c = analyzer.explore_entry(&compiled.protos, compiled.main);
        assert_eq!(c.work_cycles, 0.0);
    }

    #[test]
    fn short_circuit_conditions_fold() {
        let c = handler("if (true && false) { work(500); } work(7);");
        assert_eq!(c.work_cycles, 7.0);
    }
}
