//! Baseline DVFS governors.
//!
//! The paper compares GreenWeb against two baselines (Sec. 7.1):
//!
//! * **Perf** — always the peak configuration; best QoS, most energy.
//! * **Interactive** — Android's default interactive cpufreq governor:
//!   jumps to a high frequency when the CPU comes out of idle, then scales
//!   with utilization, with a minimum hold time before lowering.
//!
//! [`PowersaveGovernor`] and [`OndemandGovernor`] are additional reference
//! points used by the ablation benches.
//!
//! Governors are utilization-driven and cluster-local: like Android on the
//! Exynos 5410, they manage the big cluster's frequency and never migrate
//! on their own (migration is the GreenWeb runtime's lever). This is what
//! makes `Interactive` track `Perf`'s energy under frame-heavy load —
//! the observation Fig. 10a hinges on.

use crate::platform::{CpuConfig, Platform};
use crate::time::{Duration, SimTime};
use std::fmt;

/// A DVFS policy driven by periodic utilization samples.
pub trait Governor: fmt::Debug {
    /// The governor's name, for reports.
    fn name(&self) -> &'static str;

    /// How often [`Governor::on_timer`] should be invoked; `None` means
    /// the policy is static and needs no timer.
    fn timer_period(&self) -> Option<Duration> {
        Some(Duration::from_millis(20))
    }

    /// Periodic decision: `utilization` is the busy fraction of the CPU
    /// since the previous tick, in `[0, 1]`. Returns the desired
    /// configuration.
    fn on_timer(
        &mut self,
        now: SimTime,
        utilization: f64,
        current: CpuConfig,
        platform: &Platform,
    ) -> CpuConfig;

    /// Called when the CPU leaves idle (an input arrived). Default: no
    /// change.
    fn on_wakeup(&mut self, _now: SimTime, current: CpuConfig, _platform: &Platform) -> CpuConfig {
        current
    }
}

/// Always the peak configuration (paper's *Perf* baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfGovernor;

impl Governor for PerfGovernor {
    fn name(&self) -> &'static str {
        "perf"
    }

    fn timer_period(&self) -> Option<Duration> {
        None
    }

    fn on_timer(
        &mut self,
        _now: SimTime,
        _utilization: f64,
        _current: CpuConfig,
        platform: &Platform,
    ) -> CpuConfig {
        platform.peak()
    }

    fn on_wakeup(&mut self, _now: SimTime, _current: CpuConfig, platform: &Platform) -> CpuConfig {
        platform.peak()
    }
}

/// Always the lowest configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowersaveGovernor;

impl Governor for PowersaveGovernor {
    fn name(&self) -> &'static str {
        "powersave"
    }

    fn timer_period(&self) -> Option<Duration> {
        None
    }

    fn on_timer(
        &mut self,
        _now: SimTime,
        _utilization: f64,
        _current: CpuConfig,
        platform: &Platform,
    ) -> CpuConfig {
        platform.lowest()
    }

    fn on_wakeup(&mut self, _now: SimTime, _current: CpuConfig, platform: &Platform) -> CpuConfig {
        platform.lowest()
    }
}

/// Android's interactive governor (simplified but faithful state machine).
///
/// Parameters mirror the cpufreq sysfs knobs: `hispeed_freq`,
/// `go_hispeed_load`, `target_load`, `min_sample_time`,
/// `above_hispeed_delay`.
#[derive(Debug, Clone)]
pub struct InteractiveGovernor {
    /// Frequency to jump to when load exceeds `go_hispeed_load` (MHz,
    /// big cluster).
    pub hispeed_freq_mhz: u32,
    /// Load threshold that triggers the hispeed jump.
    pub go_hispeed_load: f64,
    /// Load the governor tries to hold by picking frequency.
    pub target_load: f64,
    /// Minimum time at a frequency before ramping down.
    pub min_sample_time: Duration,
    /// Time to hold at `hispeed_freq` before going above it.
    pub above_hispeed_delay: Duration,
    last_raise: SimTime,
    hispeed_since: Option<SimTime>,
}

impl InteractiveGovernor {
    /// The Android 4.x defaults (scaled to the Exynos 5410 big cluster).
    pub fn android_default(platform: &Platform) -> Self {
        InteractiveGovernor {
            hispeed_freq_mhz: platform.peak().freq_mhz * 3 / 4 / 100 * 100,
            go_hispeed_load: 0.85,
            target_load: 0.90,
            min_sample_time: Duration::from_millis(80),
            above_hispeed_delay: Duration::from_millis(20),
            last_raise: SimTime::ZERO,
            hispeed_since: None,
        }
    }

    fn clamp_to_big(&self, platform: &Platform, freq_mhz: u32) -> CpuConfig {
        let spec = platform.cluster(crate::platform::CoreType::Big);
        let snapped = freq_mhz.max(spec.min_mhz).min(spec.max_mhz);
        // Snap to the DVFS grid, rounding up (the kernel picks the lowest
        // frequency >= target).
        let offset = snapped - spec.min_mhz;
        let snapped = spec.min_mhz + offset.div_ceil(spec.step_mhz) * spec.step_mhz;
        CpuConfig::new(crate::platform::CoreType::Big, snapped.min(spec.max_mhz))
    }
}

impl Governor for InteractiveGovernor {
    fn name(&self) -> &'static str {
        "interactive"
    }

    fn on_timer(
        &mut self,
        now: SimTime,
        utilization: f64,
        current: CpuConfig,
        platform: &Platform,
    ) -> CpuConfig {
        let spec = platform.cluster(crate::platform::CoreType::Big);
        let cur_mhz = if current.core == crate::platform::CoreType::Big {
            current.freq_mhz
        } else {
            spec.min_mhz
        };
        // Frequency that would bring load back to target_load.
        let wanted = (cur_mhz as f64 * utilization / self.target_load).ceil() as u32;
        let mut target = self.clamp_to_big(platform, wanted);
        if utilization >= self.go_hispeed_load {
            if cur_mhz < self.hispeed_freq_mhz {
                // Jump to hispeed first.
                target = self.clamp_to_big(platform, self.hispeed_freq_mhz);
                self.hispeed_since = Some(now);
            } else {
                // Already at/above hispeed: only go higher after the delay.
                let held = self
                    .hispeed_since
                    .is_none_or(|t| now.saturating_since(t) >= self.above_hispeed_delay);
                if !held {
                    target = self.clamp_to_big(platform, cur_mhz);
                }
            }
        } else {
            self.hispeed_since = None;
        }

        if target.freq_mhz > cur_mhz {
            self.last_raise = now;
            target
        } else if target.freq_mhz < cur_mhz {
            // Ramp down only after min_sample_time at the higher frequency.
            if now.saturating_since(self.last_raise) >= self.min_sample_time {
                target
            } else {
                self.clamp_to_big(platform, cur_mhz)
            }
        } else {
            target
        }
    }

    fn on_wakeup(&mut self, now: SimTime, current: CpuConfig, platform: &Platform) -> CpuConfig {
        // Input boost: jump straight to hispeed.
        self.last_raise = now;
        self.hispeed_since = Some(now);
        let boosted = self.clamp_to_big(platform, self.hispeed_freq_mhz);
        if current.core == crate::platform::CoreType::Big && current.freq_mhz >= boosted.freq_mhz {
            current
        } else {
            boosted
        }
    }
}

/// The classic ondemand governor: jump to max above `up_threshold`, else
/// scale proportionally to load.
#[derive(Debug, Clone)]
pub struct OndemandGovernor {
    /// Utilization above which the governor jumps to the maximum
    /// frequency.
    pub up_threshold: f64,
}

impl Default for OndemandGovernor {
    fn default() -> Self {
        OndemandGovernor { up_threshold: 0.80 }
    }
}

impl Governor for OndemandGovernor {
    fn name(&self) -> &'static str {
        "ondemand"
    }

    fn on_timer(
        &mut self,
        _now: SimTime,
        utilization: f64,
        _current: CpuConfig,
        platform: &Platform,
    ) -> CpuConfig {
        let spec = platform.cluster(crate::platform::CoreType::Big);
        if utilization >= self.up_threshold {
            platform.peak()
        } else {
            let wanted = (spec.max_mhz as f64 * utilization / self.up_threshold) as u32;
            let snapped = wanted.max(spec.min_mhz).min(spec.max_mhz);
            let offset = snapped - spec.min_mhz;
            let snapped = spec.min_mhz + offset / spec.step_mhz * spec.step_mhz;
            CpuConfig::new(crate::platform::CoreType::Big, snapped)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CoreType;

    fn plat() -> Platform {
        Platform::odroid_xu_e()
    }

    #[test]
    fn perf_always_peak() {
        let p = plat();
        let mut g = PerfGovernor;
        assert_eq!(g.on_timer(SimTime::ZERO, 0.0, p.lowest(), &p), p.peak());
        assert_eq!(g.on_wakeup(SimTime::ZERO, p.lowest(), &p), p.peak());
        assert_eq!(g.timer_period(), None);
    }

    #[test]
    fn powersave_always_lowest() {
        let p = plat();
        let mut g = PowersaveGovernor;
        assert_eq!(g.on_timer(SimTime::ZERO, 1.0, p.peak(), &p), p.lowest());
    }

    #[test]
    fn interactive_wakeup_boosts_to_hispeed() {
        let p = plat();
        let mut g = InteractiveGovernor::android_default(&p);
        let boosted = g.on_wakeup(SimTime::ZERO, p.lowest(), &p);
        assert_eq!(boosted.core, CoreType::Big);
        assert!(boosted.freq_mhz >= g.hispeed_freq_mhz);
    }

    #[test]
    fn interactive_ramps_to_peak_under_sustained_load() {
        let p = plat();
        let mut g = InteractiveGovernor::android_default(&p);
        let mut config = g.on_wakeup(SimTime::ZERO, p.lowest(), &p);
        let mut now = SimTime::ZERO;
        for _ in 0..20 {
            now += Duration::from_millis(20);
            config = g.on_timer(now, 1.0, config, &p);
        }
        assert_eq!(config, p.peak(), "sustained full load must reach peak");
    }

    #[test]
    fn interactive_holds_before_ramping_down() {
        let p = plat();
        let mut g = InteractiveGovernor::android_default(&p);
        let mut now = SimTime::from_millis(100);
        let mut config = g.on_wakeup(now, p.lowest(), &p);
        // Load disappears immediately, but min_sample_time must elapse
        // before the frequency drops.
        now += Duration::from_millis(20);
        let held = g.on_timer(now, 0.05, config, &p);
        assert_eq!(
            held.freq_mhz, config.freq_mhz,
            "must hold during sample time"
        );
        now += Duration::from_millis(100);
        config = g.on_timer(now, 0.05, config, &p);
        assert!(config.freq_mhz < held.freq_mhz, "must eventually ramp down");
    }

    #[test]
    fn interactive_never_migrates_to_little() {
        let p = plat();
        let mut g = InteractiveGovernor::android_default(&p);
        let mut now = SimTime::ZERO;
        let mut config = g.on_wakeup(now, p.lowest(), &p);
        for i in 0..50 {
            now += Duration::from_millis(20);
            let util = if i % 2 == 0 { 0.9 } else { 0.02 };
            config = g.on_timer(now, util, config, &p);
            assert_eq!(config.core, CoreType::Big);
        }
    }

    #[test]
    fn ondemand_jumps_to_max_above_threshold() {
        let p = plat();
        let mut g = OndemandGovernor::default();
        assert_eq!(g.on_timer(SimTime::ZERO, 0.9, p.lowest(), &p), p.peak());
        let low = g.on_timer(SimTime::ZERO, 0.1, p.peak(), &p);
        assert!(low.freq_mhz < p.peak().freq_mhz);
        assert_eq!(low.core, CoreType::Big);
    }

    #[test]
    fn interactive_snaps_to_dvfs_grid() {
        let p = plat();
        let g = InteractiveGovernor::android_default(&p);
        let snapped = g.clamp_to_big(&p, 1234);
        assert!(p.is_valid(snapped));
        assert!(snapped.freq_mhz >= 1234);
    }
}
