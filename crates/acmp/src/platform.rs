//! The ACMP configuration space: core types, frequencies, and switching
//! costs (paper Sec. 7.1).

use crate::time::Duration;
use std::fmt;

/// Which cluster a configuration runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoreType {
    /// The energy-conserving low-performance cluster (Cortex-A7).
    Little,
    /// The energy-hungry high-performance cluster (Cortex-A15).
    Big,
}

impl CoreType {
    /// Both core types, little first.
    pub const ALL: [CoreType; 2] = [CoreType::Little, CoreType::Big];
}

impl fmt::Display for CoreType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreType::Little => write!(f, "A7"),
            CoreType::Big => write!(f, "A15"),
        }
    }
}

/// An execution configuration: a ⟨core, frequency⟩ tuple (paper Sec. 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuConfig {
    /// The cluster.
    pub core: CoreType,
    /// Clock frequency in MHz.
    pub freq_mhz: u32,
}

impl CpuConfig {
    /// Creates a configuration.
    pub const fn new(core: CoreType, freq_mhz: u32) -> Self {
        CpuConfig { core, freq_mhz }
    }

    /// Frequency in Hz.
    pub fn freq_hz(self) -> f64 {
        self.freq_mhz as f64 * 1e6
    }

    /// Frequency in GHz.
    pub fn freq_ghz(self) -> f64 {
        self.freq_mhz as f64 / 1e3
    }
}

impl fmt::Display for CpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}MHz", self.core, self.freq_mhz)
    }
}

/// Description of one cluster's frequency range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Minimum frequency in MHz.
    pub min_mhz: u32,
    /// Maximum frequency in MHz.
    pub max_mhz: u32,
    /// DVFS step in MHz.
    pub step_mhz: u32,
    /// Instructions (work units) retired per cycle relative to the little
    /// core; encodes the microarchitectural speed gap.
    pub ipc: f64,
}

impl ClusterSpec {
    /// All frequencies of this cluster, ascending.
    pub fn frequencies(&self) -> impl Iterator<Item = u32> + '_ {
        (self.min_mhz..=self.max_mhz).step_by(self.step_mhz as usize)
    }
}

/// The whole platform: both clusters plus switching costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    big: ClusterSpec,
    little: ClusterSpec,
    /// Cost of a frequency change within a cluster (paper: 100 µs).
    pub dvfs_cost: Duration,
    /// Cost of migrating between clusters (paper: 20 µs).
    pub migration_cost: Duration,
}

impl Platform {
    /// The ODroid XU+E / Exynos 5410 platform the paper evaluates on:
    /// A15 big cores at 800–1800 MHz (100 MHz steps), A7 little cores at
    /// 350–600 MHz (50 MHz steps), 100 µs DVFS and 20 µs migration costs.
    pub fn odroid_xu_e() -> Self {
        Platform {
            big: ClusterSpec {
                min_mhz: 800,
                max_mhz: 1800,
                step_mhz: 100,
                ipc: 2.0,
            },
            little: ClusterSpec {
                min_mhz: 350,
                max_mhz: 600,
                step_mhz: 50,
                ipc: 1.0,
            },
            dvfs_cost: Duration::from_micros(100),
            migration_cost: Duration::from_micros(20),
        }
    }

    /// A platform with custom clusters (used by the frequency-granularity
    /// ablation benchmarks).
    pub fn custom(big: ClusterSpec, little: ClusterSpec) -> Self {
        Platform {
            big,
            little,
            dvfs_cost: Duration::from_micros(100),
            migration_cost: Duration::from_micros(20),
        }
    }

    /// The cluster spec for `core`.
    pub fn cluster(&self, core: CoreType) -> &ClusterSpec {
        match core {
            CoreType::Big => &self.big,
            CoreType::Little => &self.little,
        }
    }

    /// All configurations, little cluster first, ascending frequency.
    pub fn configs(&self) -> impl Iterator<Item = CpuConfig> + '_ {
        CoreType::ALL.into_iter().flat_map(move |core| {
            self.cluster(core)
                .frequencies()
                .map(move |f| CpuConfig::new(core, f))
        })
    }

    /// The lowest-frequency configuration of `core`.
    pub fn min_config(&self, core: CoreType) -> CpuConfig {
        CpuConfig::new(core, self.cluster(core).min_mhz)
    }

    /// The highest-frequency configuration of `core`.
    pub fn max_config(&self, core: CoreType) -> CpuConfig {
        CpuConfig::new(core, self.cluster(core).max_mhz)
    }

    /// The globally lowest-power configuration (little @ min).
    pub fn lowest(&self) -> CpuConfig {
        self.min_config(CoreType::Little)
    }

    /// The globally fastest configuration (big @ max).
    pub fn peak(&self) -> CpuConfig {
        self.max_config(CoreType::Big)
    }

    /// Whether `config` is a valid point in this platform's space.
    pub fn is_valid(&self, config: CpuConfig) -> bool {
        let spec = self.cluster(config.core);
        config.freq_mhz >= spec.min_mhz
            && config.freq_mhz <= spec.max_mhz
            && (config.freq_mhz - spec.min_mhz).is_multiple_of(spec.step_mhz)
    }

    /// The next frequency level up within the same cluster, or the
    /// little→big migration (to big's minimum) when already at little's
    /// max. Returns `None` at big@max. Used by the GreenWeb feedback loop
    /// (paper Sec. 6.2: "increases the frequency to the next available
    /// level or transitions ... from the little core to the big core").
    pub fn step_up(&self, config: CpuConfig) -> Option<CpuConfig> {
        let spec = self.cluster(config.core);
        if config.freq_mhz + spec.step_mhz <= spec.max_mhz {
            Some(CpuConfig::new(config.core, config.freq_mhz + spec.step_mhz))
        } else {
            match config.core {
                CoreType::Little => Some(self.min_config(CoreType::Big)),
                CoreType::Big => None,
            }
        }
    }

    /// The opposite adjustment of [`Platform::step_up`].
    pub fn step_down(&self, config: CpuConfig) -> Option<CpuConfig> {
        let spec = self.cluster(config.core);
        if config.freq_mhz >= spec.min_mhz + spec.step_mhz {
            Some(CpuConfig::new(config.core, config.freq_mhz - spec.step_mhz))
        } else {
            match config.core {
                CoreType::Big => Some(self.max_config(CoreType::Little)),
                CoreType::Little => None,
            }
        }
    }

    /// The cost of switching from `from` to `to`: migration cost across
    /// clusters, DVFS cost within a cluster, zero if identical.
    pub fn switch_cost(&self, from: CpuConfig, to: CpuConfig) -> Duration {
        if from == to {
            Duration::ZERO
        } else if from.core != to.core {
            self.migration_cost
        } else {
            self.dvfs_cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exynos_config_space() {
        let p = Platform::odroid_xu_e();
        let configs: Vec<_> = p.configs().collect();
        // 6 little (350..=600 step 50) + 11 big (800..=1800 step 100).
        assert_eq!(configs.len(), 17);
        assert!(configs.contains(&CpuConfig::new(CoreType::Little, 350)));
        assert!(configs.contains(&CpuConfig::new(CoreType::Little, 600)));
        assert!(configs.contains(&CpuConfig::new(CoreType::Big, 800)));
        assert!(configs.contains(&CpuConfig::new(CoreType::Big, 1800)));
    }

    #[test]
    fn validity() {
        let p = Platform::odroid_xu_e();
        assert!(p.is_valid(CpuConfig::new(CoreType::Big, 1200)));
        assert!(!p.is_valid(CpuConfig::new(CoreType::Big, 1250)));
        assert!(!p.is_valid(CpuConfig::new(CoreType::Big, 700)));
        assert!(!p.is_valid(CpuConfig::new(CoreType::Little, 700)));
        assert!(p.is_valid(CpuConfig::new(CoreType::Little, 450)));
    }

    #[test]
    fn step_up_walks_whole_ladder() {
        let p = Platform::odroid_xu_e();
        let mut config = p.lowest();
        let mut steps = 0;
        while let Some(next) = p.step_up(config) {
            assert!(p.is_valid(next));
            config = next;
            steps += 1;
            assert!(steps < 100, "ladder must terminate");
        }
        assert_eq!(config, p.peak());
        assert_eq!(steps, 16); // 17 configs, 16 transitions.
    }

    #[test]
    fn step_up_migrates_little_to_big() {
        let p = Platform::odroid_xu_e();
        let top_little = p.max_config(CoreType::Little);
        assert_eq!(
            p.step_up(top_little),
            Some(CpuConfig::new(CoreType::Big, 800))
        );
        assert_eq!(p.step_up(p.peak()), None);
    }

    #[test]
    fn step_down_is_inverse() {
        let p = Platform::odroid_xu_e();
        let mut config = p.peak();
        while let Some(next) = p.step_down(config) {
            assert_eq!(p.step_up(next), Some(config));
            config = next;
        }
        assert_eq!(config, p.lowest());
    }

    #[test]
    fn switch_costs_match_paper() {
        let p = Platform::odroid_xu_e();
        let big = CpuConfig::new(CoreType::Big, 1000);
        let big2 = CpuConfig::new(CoreType::Big, 1100);
        let little = CpuConfig::new(CoreType::Little, 600);
        assert_eq!(p.switch_cost(big, big2), Duration::from_micros(100));
        assert_eq!(p.switch_cost(big, little), Duration::from_micros(20));
        assert_eq!(p.switch_cost(big, big), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            CpuConfig::new(CoreType::Big, 1800).to_string(),
            "A15@1800MHz"
        );
        assert_eq!(CoreType::Little.to_string(), "A7");
    }
}
