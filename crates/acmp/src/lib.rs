//! # greenweb-acmp
//!
//! An asymmetric chip-multiprocessor (ACMP) model standing in for the
//! Exynos 5410 big.LITTLE SoC the GreenWeb paper evaluates on (ODroid
//! XU+E, Sec. 7.1): an ARM Cortex-A15 "big" cluster (0.8–1.8 GHz in
//! 100 MHz steps) and a Cortex-A7 "LITTLE" cluster (350–600 MHz in 50 MHz
//! steps), with the paper's 100 µs DVFS and 20 µs cluster-migration
//! overheads.
//!
//! The crate provides:
//!
//! * [`time`] — integer-nanosecond simulated time shared by the whole
//!   workspace;
//! * [`platform`] — the ⟨core, frequency⟩ configuration space;
//! * [`work`] — the ground-truth execution model
//!   `T = T_independent + W / (IPC · f)` (the Xie et al. DVFS model the
//!   paper's Eq. 1 is fit against, with per-core IPC added);
//! * [`power`] — a `P = P_static + C · f · V(f)²` power model calibrated to
//!   plausible A15/A7 cluster numbers;
//! * [`cpu`] — energy metering, per-configuration residency (Fig. 11), and
//!   switch accounting (Fig. 12);
//! * [`governor`] — baseline DVFS policies: `Perf`, `Powersave`,
//!   Android-style `Interactive`, and `Ondemand`.
//!
//! ```
//! use greenweb_acmp::platform::{CoreType, CpuConfig, Platform};
//!
//! let platform = Platform::odroid_xu_e();
//! let peak = platform.max_config(CoreType::Big);
//! assert_eq!(peak, CpuConfig::new(CoreType::Big, 1800));
//! assert_eq!(platform.configs().count(), 11 + 6);
//! ```

#![forbid(unsafe_code)]

pub mod cpu;
pub mod governor;
pub mod platform;
pub mod power;
pub mod time;
pub mod work;

pub use cpu::{Cpu, EnergyBreakdown, PowerSample, SwitchKind};
pub use governor::{
    Governor, InteractiveGovernor, OndemandGovernor, PerfGovernor, PowersaveGovernor,
};
pub use platform::{CoreType, CpuConfig, Platform};
pub use power::PowerModel;
pub use time::{Duration, SimTime};
pub use work::WorkUnit;
