//! The ground-truth execution model.
//!
//! A [`WorkUnit`] is the cost of one schedulable piece of browser work
//! (a callback execution, a style pass, a paint, …). Its execution time on
//! configuration `c` follows the classical DVFS model the paper builds on
//! (Eq. 1, after Xie et al.):
//!
//! ```text
//! T(c) = T_independent + W / (IPC(core) · f)
//! ```
//!
//! where `T_independent` covers GPU and memory time that does not scale
//! with CPU frequency and `W` is CPU work in *little-core cycle
//! equivalents* (the big core's higher IPC makes it retire more work per
//! cycle). The GreenWeb runtime never sees these fields — it must infer
//! them from two profiled latencies, exactly as the paper's runtime does.

use crate::platform::CpuConfig;
use crate::time::Duration;

/// The cost of one piece of work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkUnit {
    /// CPU work in little-core cycle equivalents.
    pub cycles: f64,
    /// Frequency-independent time (GPU, memory stalls), in nanoseconds.
    pub independent_ns: f64,
}

impl WorkUnit {
    /// A work unit with only CPU cycles.
    pub fn cycles(cycles: f64) -> Self {
        WorkUnit {
            cycles,
            independent_ns: 0.0,
        }
    }

    /// A work unit with CPU cycles plus frequency-independent time given
    /// in milliseconds.
    pub fn new(cycles: f64, independent_ms: f64) -> Self {
        WorkUnit {
            cycles,
            independent_ns: independent_ms * 1e6,
        }
    }

    /// Whether there is nothing left to execute.
    pub fn is_empty(&self) -> bool {
        self.cycles <= 0.0 && self.independent_ns <= 0.0
    }

    /// Sums two work units.
    pub fn plus(&self, other: &WorkUnit) -> WorkUnit {
        WorkUnit {
            cycles: self.cycles + other.cycles,
            independent_ns: self.independent_ns + other.independent_ns,
        }
    }

    /// Execution rate of `config` in cycle-equivalents per second.
    pub fn rate(config: CpuConfig, ipc: f64) -> f64 {
        ipc * config.freq_hz()
    }

    /// Total execution time on `config` whose core has the given `ipc`.
    pub fn duration_on(&self, config: CpuConfig, ipc: f64) -> Duration {
        let cpu_ns = self.cycles / Self::rate(config, ipc) * 1e9;
        Duration::from_nanos((self.independent_ns + cpu_ns).round() as u64)
    }

    /// Consumes `elapsed` of execution on `config` and returns the
    /// remaining work. The frequency-independent portion is modeled as
    /// running first (it does not scale with the configuration, so the
    /// split point does not change totals, only mid-switch accounting).
    pub fn remaining_after(&self, config: CpuConfig, ipc: f64, elapsed: Duration) -> WorkUnit {
        let mut elapsed_ns = elapsed.as_nanos() as f64;
        let mut rest = *self;
        let indep = rest.independent_ns.min(elapsed_ns);
        rest.independent_ns -= indep;
        elapsed_ns -= indep;
        if elapsed_ns > 0.0 {
            let consumed = Self::rate(config, ipc) * elapsed_ns / 1e9;
            rest.cycles = (rest.cycles - consumed).max(0.0);
        }
        rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{CoreType, Platform};

    fn plat() -> Platform {
        Platform::odroid_xu_e()
    }

    #[test]
    fn duration_scales_inversely_with_frequency() {
        let w = WorkUnit::cycles(100e6);
        let p = plat();
        let ipc = p.cluster(CoreType::Big).ipc;
        let fast = w.duration_on(CpuConfig::new(CoreType::Big, 1800), ipc);
        let slow = w.duration_on(CpuConfig::new(CoreType::Big, 900), ipc);
        let ratio = slow.as_millis_f64() / fast.as_millis_f64();
        assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn big_core_ipc_doubles_throughput() {
        let w = WorkUnit::cycles(100e6);
        let p = plat();
        let big = w.duration_on(
            CpuConfig::new(CoreType::Big, 600),
            p.cluster(CoreType::Big).ipc,
        );
        let little = w.duration_on(
            CpuConfig::new(CoreType::Little, 600),
            p.cluster(CoreType::Little).ipc,
        );
        assert!((little.as_millis_f64() / big.as_millis_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn independent_time_does_not_scale() {
        let w = WorkUnit::new(0.0, 5.0);
        let p = plat();
        for config in p.configs() {
            let d = w.duration_on(config, p.cluster(config.core).ipc);
            assert_eq!(d, Duration::from_millis(5));
        }
    }

    #[test]
    fn eq1_shape_holds() {
        // T(f) should be affine in 1/f with intercept = independent time.
        let w = WorkUnit::new(90e6, 3.0);
        let p = plat();
        let ipc = p.cluster(CoreType::Big).ipc;
        let t1 = w
            .duration_on(CpuConfig::new(CoreType::Big, 900), ipc)
            .as_millis_f64();
        let t2 = w
            .duration_on(CpuConfig::new(CoreType::Big, 1800), ipc)
            .as_millis_f64();
        // Solve the two-point system like the GreenWeb runtime does.
        let inv1 = 1.0 / 900.0e6;
        let inv2 = 1.0 / 1800.0e6;
        let n_over_ipc = (t1 - t2) / 1e3 / (inv1 - inv2);
        let t_indep_ms = t1 - n_over_ipc * inv1 * 1e3;
        assert!((t_indep_ms - 3.0).abs() < 1e-6, "t_indep {t_indep_ms}");
        assert!(
            (n_over_ipc * ipc / ipc - 45e6).abs() < 1.0,
            "N {n_over_ipc}"
        );
    }

    #[test]
    fn remaining_after_consumes_independent_first() {
        let w = WorkUnit::new(100e6, 2.0);
        let p = plat();
        let config = CpuConfig::new(CoreType::Little, 500);
        let ipc = p.cluster(CoreType::Little).ipc;
        let rest = w.remaining_after(config, ipc, Duration::from_millis(1));
        assert_eq!(rest.cycles, 100e6);
        assert!((rest.independent_ns - 1e6).abs() < 1.0);
        // After the independent part, cycles start draining at 500 MHz.
        let rest2 = w.remaining_after(config, ipc, Duration::from_millis(3));
        assert_eq!(rest2.independent_ns, 0.0);
        assert!((rest2.cycles - (100e6 - 0.5e6 * 1.0)).abs() < 1e3);
    }

    #[test]
    fn remaining_never_negative() {
        let w = WorkUnit::new(1e6, 1.0);
        let p = plat();
        let config = p.peak();
        let rest = w.remaining_after(config, 2.0, Duration::from_millis(100));
        assert!(rest.is_empty());
    }

    #[test]
    fn plus_sums_components() {
        let a = WorkUnit::new(1e6, 1.0);
        let b = WorkUnit::new(2e6, 0.5);
        let c = a.plus(&b);
        assert_eq!(c.cycles, 3e6);
        assert_eq!(c.independent_ns, 1.5e6);
    }

    #[test]
    fn duration_additivity_under_split() {
        // Splitting execution at an arbitrary point must preserve total time.
        let w = WorkUnit::new(80e6, 4.0);
        let p = plat();
        let config = CpuConfig::new(CoreType::Big, 1000);
        let ipc = p.cluster(CoreType::Big).ipc;
        let total = w.duration_on(config, ipc);
        let split = Duration::from_millis(10);
        let rest = w.remaining_after(config, ipc, split);
        let tail = rest.duration_on(config, ipc);
        let recombined = split + tail;
        let diff = (recombined.as_millis_f64() - total.as_millis_f64()).abs();
        assert!(diff < 1e-3, "diff {diff} ms");
    }
}
