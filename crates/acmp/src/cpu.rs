//! CPU state: energy metering, per-configuration residency (Fig. 11), and
//! switch accounting (Fig. 12).
//!
//! The engine owns the clock; [`Cpu`] integrates power over the intervals
//! between state changes. Busy/idle and configuration changes must be
//! preceded by an [`Cpu::advance`] to the current time, which the mutating
//! methods do internally.

use crate::platform::{CoreType, CpuConfig, Platform};
use crate::power::PowerModel;
use crate::time::{Duration, SimTime};
use crate::work::WorkUnit;
use std::collections::HashMap;
use std::fmt;

/// The kind of a configuration switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchKind {
    /// Frequency change within a cluster (paper: 100 µs).
    Dvfs,
    /// Cluster migration (paper: 20 µs).
    Migration,
}

impl fmt::Display for SwitchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchKind::Dvfs => write!(f, "dvfs"),
            SwitchKind::Migration => write!(f, "migration"),
        }
    }
}

/// Accumulated energy, split by CPU state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy spent executing work, in millijoules.
    pub active_mj: f64,
    /// Energy spent idling, in millijoules.
    pub idle_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.active_mj + self.idle_mj
    }
}

/// A point-in-time reading of the CPU's power state, as tracing
/// samples it at display rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// The configuration at the sample point.
    pub config: CpuConfig,
    /// Whether the CPU was executing work.
    pub busy: bool,
    /// Instantaneous power draw at the sampled state, in milliwatts.
    pub power_mw: f64,
    /// Cumulative ground-truth energy.
    pub energy: EnergyBreakdown,
    /// Cumulative energy as the (possibly distorted) sensor reports it.
    pub metered: EnergyBreakdown,
}

/// The simulated CPU.
#[derive(Debug, Clone)]
pub struct Cpu {
    platform: Platform,
    power: PowerModel,
    config: CpuConfig,
    busy: bool,
    last_update: SimTime,
    energy: EnergyBreakdown,
    metered: EnergyBreakdown,
    sensor_gain: f64,
    residency: HashMap<CpuConfig, Duration>,
    busy_residency: HashMap<CpuConfig, Duration>,
    busy_time: Duration,
    total_time: Duration,
    dvfs_switches: u64,
    migrations: u64,
}

impl Cpu {
    /// Creates a CPU at the platform's peak configuration (how interactive
    /// Android devices come out of input boost), idle, at time zero.
    pub fn new(platform: Platform, power: PowerModel) -> Self {
        let config = platform.peak();
        Cpu {
            platform,
            power,
            config,
            busy: false,
            last_update: SimTime::ZERO,
            energy: EnergyBreakdown::default(),
            metered: EnergyBreakdown::default(),
            sensor_gain: 1.0,
            residency: HashMap::new(),
            busy_residency: HashMap::new(),
            busy_time: Duration::ZERO,
            total_time: Duration::ZERO,
            dvfs_switches: 0,
            migrations: 0,
        }
    }

    /// Overrides the initial configuration.
    pub fn with_config(mut self, config: CpuConfig) -> Self {
        assert!(self.platform.is_valid(config), "invalid config {config}");
        self.config = config;
        self
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The current configuration.
    pub fn config(&self) -> CpuConfig {
        self.config
    }

    /// Whether the CPU is currently executing work.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// IPC of the current configuration's cluster.
    pub fn current_ipc(&self) -> f64 {
        self.platform.cluster(self.config.core).ipc
    }

    /// Time `work` would take at the current configuration.
    pub fn duration_of(&self, work: &WorkUnit) -> Duration {
        work.duration_on(self.config, self.current_ipc())
    }

    /// Remaining work after executing `work` at the current configuration
    /// for `elapsed`.
    pub fn remaining_after(&self, work: &WorkUnit, elapsed: Duration) -> WorkUnit {
        work.remaining_after(self.config, self.current_ipc(), elapsed)
    }

    /// Integrates power up to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the previous update.
    pub fn advance(&mut self, now: SimTime) {
        let span = now.since(self.last_update);
        if span.is_zero() {
            return;
        }
        let secs = span.as_secs_f64();
        if self.busy {
            let mw = self.power.active_mw(&self.platform, self.config);
            self.energy.active_mj += mw * secs;
            self.metered.active_mj += mw * secs * self.sensor_gain;
            self.busy_time += span;
            *self
                .busy_residency
                .entry(self.config)
                .or_insert(Duration::ZERO) += span;
        } else {
            let mw = self.power.idle_mw(self.config);
            self.energy.idle_mj += mw * secs;
            self.metered.idle_mj += mw * secs * self.sensor_gain;
        }
        *self.residency.entry(self.config).or_insert(Duration::ZERO) += span;
        self.total_time += span;
        self.last_update = now;
    }

    /// Marks the CPU busy or idle as of `now`.
    pub fn set_busy(&mut self, now: SimTime, busy: bool) {
        self.advance(now);
        self.busy = busy;
    }

    /// Switches to `to` as of `now`, returning the stall penalty the
    /// caller must add to the running work (zero when `to` equals the
    /// current configuration). The stall itself is charged as active time
    /// at the *new* configuration by the caller's subsequent advance.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid configuration of the platform.
    pub fn switch(&mut self, now: SimTime, to: CpuConfig) -> Duration {
        assert!(self.platform.is_valid(to), "invalid config {to}");
        self.advance(now);
        if to == self.config {
            return Duration::ZERO;
        }
        let kind = if to.core != self.config.core {
            SwitchKind::Migration
        } else {
            SwitchKind::Dvfs
        };
        match kind {
            SwitchKind::Dvfs => self.dvfs_switches += 1,
            SwitchKind::Migration => self.migrations += 1,
        }
        let cost = self.platform.switch_cost(self.config, to);
        self.config = to;
        cost
    }

    /// Accumulated energy (ground truth, as dissipated by the model).
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy
    }

    /// Energy as reported by the platform's power sensor (the XU+E's
    /// on-board current/voltage meters). Equal to [`Cpu::energy`] unless a
    /// sensor distortion has been applied with [`Cpu::set_sensor_gain`] —
    /// fault injection uses that to model sensor noise and dropout.
    /// Policies that meter their own consumption (e.g. energy-budget UAI
    /// fallback) read this, not the ground truth.
    pub fn metered_energy(&self) -> EnergyBreakdown {
        self.metered
    }

    /// Sets the gain the power sensor applies to all subsequent energy
    /// increments: `1.0` is a faithful sensor, `0.0` a dropout (the meter
    /// reads nothing), other values model calibration noise. Advances the
    /// integrator to `now` first so the new gain only affects the future.
    pub fn set_sensor_gain(&mut self, now: SimTime, gain: f64) {
        self.advance(now);
        self.sensor_gain = gain.max(0.0);
    }

    /// The current power-sensor gain.
    pub fn sensor_gain(&self) -> f64 {
        self.sensor_gain
    }

    /// Reads the instantaneous power state. Callers should
    /// [`Cpu::advance`] to the sample time first so the cumulative
    /// energies are current.
    pub fn power_sample(&self) -> PowerSample {
        let power_mw = if self.busy {
            self.power.active_mw(&self.platform, self.config)
        } else {
            self.power.idle_mw(self.config)
        };
        PowerSample {
            config: self.config,
            busy: self.busy,
            power_mw,
            energy: self.energy,
            metered: self.metered,
        }
    }

    /// Total wall-clock residency per configuration (the Fig. 11 data).
    pub fn residency(&self) -> &HashMap<CpuConfig, Duration> {
        &self.residency
    }

    /// Busy-only residency per configuration.
    pub fn busy_residency(&self) -> &HashMap<CpuConfig, Duration> {
        &self.busy_residency
    }

    /// `(dvfs switches, migrations)` — the Fig. 12 data.
    pub fn switch_counts(&self) -> (u64, u64) {
        (self.dvfs_switches, self.migrations)
    }

    /// Total busy time.
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }

    /// Total simulated time observed.
    pub fn total_time(&self) -> Duration {
        self.total_time
    }

    /// Fraction of observed time spent busy.
    pub fn busy_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.busy_time.as_secs_f64() / self.total_time.as_secs_f64()
        }
    }

    /// Fraction of observed time resident on the big cluster.
    pub fn big_residency_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        let big: f64 = self
            .residency
            .iter()
            .filter(|(c, _)| c.core == CoreType::Big)
            .map(|(_, d)| d.as_secs_f64())
            .sum();
        big / self.total_time.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Cpu {
        Cpu::new(Platform::odroid_xu_e(), PowerModel::odroid_xu_e())
    }

    #[test]
    fn starts_at_peak_and_idle() {
        let c = cpu();
        assert_eq!(c.config(), Platform::odroid_xu_e().peak());
        assert!(!c.is_busy());
        assert_eq!(c.energy().total_mj(), 0.0);
    }

    #[test]
    fn idle_energy_integrates() {
        let mut c = cpu();
        c.advance(SimTime::from_secs(1));
        let e = c.energy();
        assert_eq!(e.active_mj, 0.0);
        let idle_mw = c.power_model().idle_mw(c.config());
        assert!((e.idle_mj - idle_mw).abs() < 1e-9);
    }

    #[test]
    fn busy_energy_integrates_at_active_power() {
        let mut c = cpu();
        c.set_busy(SimTime::ZERO, true);
        c.advance(SimTime::from_secs(2));
        let active_mw = c.power_model().active_mw(c.platform(), c.config());
        assert!((c.energy().active_mj - 2.0 * active_mw).abs() < 1e-9);
        assert_eq!(c.busy_time(), Duration::from_millis(2000));
        assert_eq!(c.busy_fraction(), 1.0);
    }

    #[test]
    fn mixed_busy_idle_split() {
        let mut c = cpu();
        c.set_busy(SimTime::ZERO, true);
        c.set_busy(SimTime::from_millis(300), false);
        c.advance(SimTime::from_secs(1));
        assert!((c.busy_fraction() - 0.3).abs() < 1e-9);
        assert!(c.energy().active_mj > 0.0);
        assert!(c.energy().idle_mj > 0.0);
    }

    #[test]
    fn switch_counts_and_costs() {
        let mut c = cpu();
        let p = Platform::odroid_xu_e();
        let cost1 = c.switch(SimTime::from_millis(1), CpuConfig::new(CoreType::Big, 1000));
        assert_eq!(cost1, Duration::from_micros(100));
        let cost2 = c.switch(SimTime::from_millis(2), p.lowest());
        assert_eq!(cost2, Duration::from_micros(20));
        let cost3 = c.switch(SimTime::from_millis(3), p.lowest());
        assert_eq!(cost3, Duration::ZERO);
        assert_eq!(c.switch_counts(), (1, 1));
    }

    #[test]
    fn residency_tracks_configs() {
        let mut c = cpu();
        let p = Platform::odroid_xu_e();
        c.advance(SimTime::from_millis(10));
        c.switch(SimTime::from_millis(10), p.lowest());
        c.advance(SimTime::from_millis(40));
        assert_eq!(c.residency()[&p.peak()], Duration::from_millis(10));
        assert_eq!(c.residency()[&p.lowest()], Duration::from_millis(30));
        assert!((c.big_residency_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn lower_config_burns_less_energy_for_same_wall_time() {
        let mut fast = cpu();
        fast.set_busy(SimTime::ZERO, true);
        fast.advance(SimTime::from_secs(1));
        let mut slow = cpu().with_config(Platform::odroid_xu_e().lowest());
        slow.set_busy(SimTime::ZERO, true);
        slow.advance(SimTime::from_secs(1));
        assert!(slow.energy().total_mj() < fast.energy().total_mj() / 5.0);
    }

    #[test]
    #[should_panic(expected = "invalid config")]
    fn switch_rejects_invalid_config() {
        let mut c = cpu();
        c.switch(SimTime::ZERO, CpuConfig::new(CoreType::Big, 1234));
    }

    #[test]
    fn metered_energy_tracks_truth_with_unit_gain() {
        let mut c = cpu();
        c.set_busy(SimTime::ZERO, true);
        c.advance(SimTime::from_secs(1));
        assert_eq!(c.metered_energy(), c.energy());
    }

    #[test]
    fn sensor_gain_distorts_metered_but_not_truth() {
        let mut c = cpu();
        c.set_busy(SimTime::ZERO, true);
        c.advance(SimTime::from_millis(500));
        c.set_sensor_gain(SimTime::from_millis(500), 0.0); // dropout
        c.advance(SimTime::from_secs(1));
        let truth = c.energy().total_mj();
        let metered = c.metered_energy().total_mj();
        assert!((metered - truth / 2.0).abs() < 1e-9, "{metered} vs {truth}");
        c.set_sensor_gain(SimTime::from_secs(1), 2.0); // over-reading noise
        c.advance(SimTime::from_millis(1500));
        assert!(c.metered_energy().total_mj() > c.energy().total_mj() * 0.99);
    }

    #[test]
    fn power_sample_reflects_state() {
        let mut c = cpu();
        let idle = c.power_sample();
        assert!(!idle.busy);
        assert_eq!(idle.power_mw, c.power_model().idle_mw(c.config()));
        c.set_busy(SimTime::ZERO, true);
        c.advance(SimTime::from_secs(1));
        let busy = c.power_sample();
        assert!(busy.busy);
        assert_eq!(
            busy.power_mw,
            c.power_model().active_mw(c.platform(), c.config())
        );
        assert_eq!(busy.energy, c.energy());
        assert_eq!(busy.metered, c.metered_energy());
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut c = cpu();
        c.advance(SimTime::from_millis(5));
        let e = c.energy();
        c.advance(SimTime::from_millis(5));
        assert_eq!(c.energy(), e);
    }
}
