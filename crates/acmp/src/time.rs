//! Simulated time: integer nanoseconds for exact, deterministic ordering.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Shared human-readable formatting: picks ns/µs/ms/s by magnitude.
macro_rules! fmt_time_impl {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let ns = self.0;
            if ns < 1_000 {
                write!(f, "{ns}ns")
            } else if ns < 1_000_000 {
                write!(f, "{:.1}us", ns as f64 / 1e3)
            } else if ns < 1_000_000_000 {
                write!(f, "{:.2}ms", ns as f64 / 1e6)
            } else {
                write!(f, "{:.3}s", ns as f64 / 1e9)
            }
        }
    };
}

/// An instant on the simulation clock, in nanoseconds since start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional milliseconds (rounds to nanoseconds; negative
    /// inputs clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimTime((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> Duration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        Duration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fmt_time_impl!();
}

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// From fractional milliseconds (rounds; clamps negatives to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        Duration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// From fractional seconds (rounds; clamps negatives to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this is the zero duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Duration {
    fmt_time_impl!();
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(Duration::from_millis_f64(16.6).as_millis_f64(), 16.6);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t.since(SimTime::from_millis(10)), Duration::from_millis(5));
        assert_eq!(
            Duration::from_millis(3) + Duration::from_millis(4),
            Duration::from_millis(7)
        );
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_when_backwards() {
        SimTime::from_millis(1).since(SimTime::from_millis(2));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::from_millis(1).saturating_since(SimTime::from_millis(2)),
            Duration::ZERO
        );
    }

    #[test]
    fn negative_f64_clamps_to_zero() {
        assert_eq!(Duration::from_millis_f64(-5.0), Duration::ZERO);
        assert_eq!(SimTime::from_millis_f64(-5.0), SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Duration::from_nanos(500).to_string(), "500ns");
        assert_eq!(Duration::from_micros(1500).to_string(), "1.50ms");
        assert_eq!(Duration::from_millis(2500).to_string(), "2.500s");
    }

    #[test]
    fn ordering_is_total() {
        let mut times = [
            SimTime::from_millis(3),
            SimTime::from_millis(1),
            SimTime::from_millis(2),
        ];
        times.sort();
        assert_eq!(times[0], SimTime::from_millis(1));
        assert_eq!(times[2], SimTime::from_millis(3));
    }
}
