//! The power model.
//!
//! Active power of a configuration follows the standard CMOS form
//! `P = P_static + C_dyn · f · V(f)²`, with a per-cluster linear voltage
//! curve between the cluster's frequency endpoints. Idle power models a
//! clock-gated cluster that is still powered (the cluster the OS last ran
//! on keeps leaking until a migration happens).
//!
//! The constants are calibrated to plausible Exynos 5410 cluster numbers
//! (A15 cluster peaking near 4.5 W, A7 cluster a few hundred mW), which
//! reproduce the energy-ratio *shapes* of the paper's figures; absolute
//! joules are not comparable to the ODroid sense-resistor measurements
//! and are not meant to be.

use crate::platform::{CoreType, CpuConfig, Platform};

/// Per-cluster electrical parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterPower {
    /// Static (leakage) power when the cluster is active, in mW.
    pub static_mw: f64,
    /// Effective switched capacitance, in mW / (GHz · V²).
    pub cdyn: f64,
    /// Supply voltage at the cluster's minimum frequency.
    pub v_min: f64,
    /// Supply voltage at the cluster's maximum frequency.
    pub v_max: f64,
    /// Idle (clock-gated) power while the cluster stays resident, in mW.
    pub idle_mw: f64,
}

/// The platform power model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    big: ClusterPower,
    little: ClusterPower,
}

impl PowerModel {
    /// The default model calibrated for [`Platform::odroid_xu_e`].
    pub fn odroid_xu_e() -> Self {
        PowerModel {
            big: ClusterPower {
                static_mw: 650.0,
                cdyn: 1250.0,
                v_min: 0.92,
                v_max: 1.25,
                idle_mw: 60.0,
            },
            little: ClusterPower {
                static_mw: 70.0,
                cdyn: 600.0,
                v_min: 0.90,
                v_max: 1.10,
                idle_mw: 28.0,
            },
        }
    }

    /// A model with custom cluster parameters.
    pub fn custom(big: ClusterPower, little: ClusterPower) -> Self {
        PowerModel { big, little }
    }

    /// The parameters of `core`'s cluster.
    pub fn cluster(&self, core: CoreType) -> &ClusterPower {
        match core {
            CoreType::Big => &self.big,
            CoreType::Little => &self.little,
        }
    }

    /// Supply voltage of `config` (linear interpolation over the
    /// cluster's frequency range).
    pub fn voltage(&self, platform: &Platform, config: CpuConfig) -> f64 {
        let spec = platform.cluster(config.core);
        let cp = self.cluster(config.core);
        if spec.max_mhz == spec.min_mhz {
            return cp.v_max;
        }
        let t = (config.freq_mhz - spec.min_mhz) as f64 / (spec.max_mhz - spec.min_mhz) as f64;
        cp.v_min + (cp.v_max - cp.v_min) * t
    }

    /// Active power of `config` in milliwatts.
    pub fn active_mw(&self, platform: &Platform, config: CpuConfig) -> f64 {
        let cp = self.cluster(config.core);
        let v = self.voltage(platform, config);
        cp.static_mw + cp.cdyn * config.freq_ghz() * v * v
    }

    /// Idle power while `config`'s cluster stays resident, in milliwatts.
    pub fn idle_mw(&self, config: CpuConfig) -> f64 {
        self.cluster(config.core).idle_mw
    }

    /// Energy per unit of work (nJ per little-core cycle equivalent) at
    /// `config` — the quantity the GreenWeb runtime implicitly minimizes.
    pub fn energy_per_cycle_nj(&self, platform: &Platform, config: CpuConfig) -> f64 {
        let ipc = platform.cluster(config.core).ipc;
        let rate = ipc * config.freq_hz();
        self.active_mw(platform, config) * 1e-3 / rate * 1e9
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::odroid_xu_e()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Platform, PowerModel) {
        (Platform::odroid_xu_e(), PowerModel::odroid_xu_e())
    }

    #[test]
    fn power_increases_with_frequency() {
        let (p, m) = setup();
        for core in CoreType::ALL {
            let mut prev = 0.0;
            for f in p.cluster(core).frequencies() {
                let mw = m.active_mw(&p, CpuConfig::new(core, f));
                assert!(mw > prev, "{core} {f} MHz: {mw} <= {prev}");
                prev = mw;
            }
        }
    }

    #[test]
    fn power_is_superlinear_in_frequency() {
        // Doubling frequency should more than double power (V rises too).
        let (p, m) = setup();
        let low = m.active_mw(&p, CpuConfig::new(CoreType::Big, 900));
        let high = m.active_mw(&p, CpuConfig::new(CoreType::Big, 1800));
        let dyn_low = low - m.cluster(CoreType::Big).static_mw;
        let dyn_high = high - m.cluster(CoreType::Big).static_mw;
        assert!(dyn_high > 2.0 * dyn_low);
    }

    #[test]
    fn big_cluster_draws_more_than_little() {
        let (p, m) = setup();
        let big_min = m.active_mw(&p, p.min_config(CoreType::Big));
        let little_max = m.active_mw(&p, p.max_config(CoreType::Little));
        assert!(big_min > little_max);
        assert!(m.idle_mw(p.peak()) > m.idle_mw(p.lowest()));
    }

    #[test]
    fn peak_power_in_plausible_range() {
        let (p, m) = setup();
        let peak = m.active_mw(&p, p.peak());
        assert!((3000.0..6000.0).contains(&peak), "A15 peak {peak} mW");
        let little_peak = m.active_mw(&p, p.max_config(CoreType::Little));
        assert!(
            (300.0..800.0).contains(&little_peak),
            "A7 peak {little_peak} mW"
        );
    }

    #[test]
    fn voltage_endpoints() {
        let (p, m) = setup();
        assert_eq!(m.voltage(&p, p.min_config(CoreType::Big)), 0.92);
        assert_eq!(m.voltage(&p, p.max_config(CoreType::Big)), 1.25);
        let mid = m.voltage(&p, CpuConfig::new(CoreType::Big, 1300));
        assert!(mid > 0.92 && mid < 1.25);
    }

    #[test]
    fn little_core_is_more_energy_efficient() {
        // nJ/cycle must be lower on the little cluster — this asymmetry is
        // the entire reason the GreenWeb runtime prefers it when QoS allows.
        let (p, m) = setup();
        let little = m.energy_per_cycle_nj(&p, p.min_config(CoreType::Little));
        let big = m.energy_per_cycle_nj(&p, p.peak());
        assert!(
            big / little > 1.5,
            "efficiency gap too small: big {big} vs little {little}"
        );
    }

    #[test]
    fn energy_per_cycle_increases_with_frequency_within_cluster() {
        let (p, m) = setup();
        for core in CoreType::ALL {
            let low = m.energy_per_cycle_nj(&p, p.min_config(core));
            let high = m.energy_per_cycle_nj(&p, p.max_config(core));
            assert!(high > low, "{core}: {high} <= {low}");
        }
    }
}
