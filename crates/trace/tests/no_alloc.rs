//! Proves the detached tracing path is allocation-free: `record_into`
//! with `None` must never run the payload closure, so the `Vec`s and
//! `String`s an event owns are never built.

// The only unsafe in the workspace: a `GlobalAlloc` impl (inherently an
// unsafe trait) that delegates to `System` and counts calls.
#![allow(unsafe_code)]

use greenweb_acmp::{Duration, SimTime};
use greenweb_trace::{record_into, EventKind, SpanKind, TraceHandle};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates to `System` unchanged; only a counter is added.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocating_event(i: u64) -> EventKind {
    EventKind::Span {
        kind: SpanKind::Callback,
        start: SimTime::from_millis(i),
        dur: Duration::from_millis(1),
        uids: vec![i, i + 1, i + 2],
        label: Some("click"),
        ops: i,
    }
}

#[test]
fn detached_recording_does_not_allocate() {
    let sink: Option<TraceHandle> = None;
    // Warm up anything lazy in the harness before measuring.
    record_into(&sink, SimTime::ZERO, || allocating_event(0));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000 {
        record_into(&sink, SimTime::from_millis(i), || allocating_event(i));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "detached record_into must not allocate (payload closure must not run)"
    );
}

#[test]
fn attached_recording_does_allocate() {
    // Sanity check that the counter actually observes the payload
    // allocations when a recorder is attached.
    let sink = Some(TraceHandle::with_capacity(16));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    record_into(&sink, SimTime::ZERO, || allocating_event(1));
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(after > before, "attached path should build the payload");
}
