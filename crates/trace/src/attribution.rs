//! The attribution profiler: a deterministic post-processing layer that
//! reconstructs, per input event, the full causal chain the trace
//! recorded — event → handler callback → style/layout/paint spans →
//! frame commits → `EnergySample` deltas — and answers "where did the
//! energy go".
//!
//! Energy apportioning works on the cumulative ground-truth counter the
//! engine samples at every delivered VSync: each inter-sample delta is
//! spread over the spans that overlap the interval in proportion to
//! their overlap (a piecewise-uniform power approximation — exact for
//! the simulator's constant-power-per-config model whenever no switch
//! lands mid-interval, and conservative otherwise). Whatever no span
//! covers is the idle floor. By construction
//! `attributed + idle = total` up to f64 rounding, which is what the
//! conservation gate in `tests/trace.rs` pins.
//!
//! Everything here is a pure function of the [`TraceBuffer`]: no clocks,
//! no maps with nondeterministic iteration order, so identical runs
//! produce byte-identical profiles — serial vs parallel, run vs re-run.

use crate::event::{EventKind, SpanKind};
use crate::export::{open_event, push_f64, push_json_str, push_uids};
use crate::metrics::Histogram;
use crate::recorder::TraceBuffer;
use greenweb_acmp::{Duration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Index of `kind` within [`SpanKind::ALL`] — the phase axis of every
/// per-phase array in this module.
fn phase_index(kind: SpanKind) -> usize {
    SpanKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("SpanKind::ALL covers every kind")
}

/// One span lifted out of the trace with its attributed energy.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributedSpan {
    /// Which pipeline stage.
    pub kind: SpanKind,
    /// When the work started.
    pub start: SimTime,
    /// How long it ran.
    pub dur: Duration,
    /// The input uids the work answers.
    pub uids: Vec<u64>,
    /// Optional DOM event type annotation.
    pub label: Option<&'static str>,
    /// VM opcodes executed (callback spans only).
    pub ops: u64,
    /// Energy apportioned to this span, in millijoules.
    pub mj: f64,
}

impl AttributedSpan {
    fn end(&self) -> SimTime {
        self.start + self.dur
    }
}

/// Everything one input event bought: its per-phase energy split, the
/// script work it triggered, and the frames that answered it.
#[derive(Debug, Clone, PartialEq)]
pub struct EventAttribution {
    /// The input's uid.
    pub uid: u64,
    /// The DOM event type name (`"?"` when the dispatch span was
    /// evicted by the ring).
    pub label: String,
    /// When the input was dispatched.
    pub dispatch: SimTime,
    /// Energy per pipeline phase, indexed like [`SpanKind::ALL`], in
    /// millijoules.
    pub phase_mj: [f64; 6],
    /// VM opcodes executed in callbacks answering this input.
    pub ops: u64,
    /// Frames committed for this input.
    pub frames: u64,
}

impl EventAttribution {
    /// Total energy attributed to this event across all phases.
    pub fn total_mj(&self) -> f64 {
        self.phase_mj.iter().sum()
    }
}

/// Aggregate cost of one callback population, keyed by the DOM event
/// type that triggered it.
#[derive(Debug, Clone, PartialEq)]
pub struct CallbackCost {
    /// The triggering event type name.
    pub label: String,
    /// Number of callback spans.
    pub count: u64,
    /// Total callback wall time, in milliseconds.
    pub total_ms: f64,
    /// Total callback energy, in millijoules.
    pub total_mj: f64,
    /// Total VM opcodes executed.
    pub total_ops: u64,
}

/// Exact selector-match work per rule bucket, from the run's
/// `StyleStats` record.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketCost {
    /// Bucket name: `"id"`, `"class"`, `"tag"`, `"universal"`.
    pub bucket: &'static str,
    /// Exact match walks on candidates from this bucket.
    pub matches: u64,
    /// This bucket's share of all exact walks (0 when none ran).
    pub share: f64,
}

/// The run's render-pipeline counters, lifted from the `RenderStats`
/// record: layout dirtiness/reuse and paint damage, as one roll-up row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderWork {
    /// Frames laid out.
    pub relayouts: u64,
    /// Elements actually measured across the run.
    pub elements_laid_out: u64,
    /// Clean subtrees served whole from the measure cache.
    pub subtree_reuses: u64,
    /// Elements whose subtree fingerprint changed.
    pub dirty_elements: u64,
    /// Frames charged the full paint price.
    pub full_repaints: u64,
    /// Frames charged a damaged-fraction paint price.
    pub partial_repaints: u64,
    /// Display items (re)built.
    pub items_emitted: u64,
    /// Retained display items reused unchanged.
    pub items_reused: u64,
    /// Damaged display items.
    pub damage_items: u64,
    /// Damaged area, px².
    pub damage_area: u64,
}

/// Why one deadline was missed: the commit that blew its target and the
/// spans that consumed the budget inside the missed frame's interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationForensics {
    /// The input uid whose frame missed.
    pub uid: u64,
    /// The frame's sequence number within the input's lifetime.
    pub seq: u32,
    /// The originating DOM event type name.
    pub event: String,
    /// When the frame committed.
    pub at: SimTime,
    /// The recorded frame latency, in milliseconds.
    pub latency_ms: f64,
    /// The QoS target in force at the commit, in milliseconds.
    pub target_ms: f64,
    /// The spans overlapping `[at − latency, at]` — where the budget
    /// went, costliest window first in trace order.
    pub spans: Vec<AttributedSpan>,
    /// Configuration switches that landed inside the window.
    pub switches_in_window: u64,
}

/// The full attribution profile of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionProfile {
    /// Per-event attribution rows, uid-ascending.
    pub events: Vec<EventAttribution>,
    /// Per-callback cost ranking, total-energy-descending.
    pub callbacks: Vec<CallbackCost>,
    /// Per-selector-bucket cost ranking, matches-descending.
    pub buckets: Vec<BucketCost>,
    /// Deadline-miss forensics, commit order.
    pub forensics: Vec<ViolationForensics>,
    /// Render-pipeline counters (layout dirtiness, paint damage) from
    /// the run's `RenderStats` record; zeros when the trace has none.
    pub render: RenderWork,
    /// Energy per pipeline phase, indexed like [`SpanKind::ALL`].
    pub phase_mj: [f64; 6],
    /// Energy in sample intervals no span covered.
    pub idle_mj: f64,
    /// Energy the sample stream recorded but no interval could place
    /// (stays 0 whenever the run produced samples).
    pub unattributed_mj: f64,
    /// Ground-truth total: the last sample's cumulative counter.
    pub total_mj: f64,
    /// DVFS switch count.
    pub switch_dvfs: u64,
    /// Core-migration switch count.
    pub switch_migration: u64,
    /// Events the ring evicted before the snapshot (attribution
    /// undercounts when non-zero).
    pub dropped: u64,
}

impl AttributionProfile {
    /// Sum of energy attributed to spans (total − idle − unattributed,
    /// up to f64 rounding).
    pub fn attributed_mj(&self) -> f64 {
        self.phase_mj.iter().sum()
    }

    /// Number of deadline misses.
    pub fn misses(&self) -> u64 {
        self.forensics.len() as u64
    }

    /// Builds the profile from a recorded trace.
    ///
    /// Single forward pass to lift spans/samples/commits, then one
    /// two-pointer sweep to apportion each inter-sample energy delta
    /// over the spans overlapping it.
    pub fn from_trace(buffer: &TraceBuffer) -> AttributionProfile {
        let mut spans: Vec<AttributedSpan> = Vec::new();
        // Cumulative ground-truth samples, with the implicit zero origin.
        let mut samples: Vec<(SimTime, f64)> = vec![(SimTime::ZERO, 0.0)];
        let mut commits: Vec<(SimTime, u64, u32, &'static str, Duration)> = Vec::new();
        let mut switch_times: Vec<SimTime> = Vec::new();
        let mut targets: Vec<(SimTime, u64, f64)> = Vec::new();
        let mut bucket_counts: Option<[u64; 4]> = None;
        let mut render = RenderWork::default();
        let (mut switch_dvfs, mut switch_migration) = (0u64, 0u64);
        for record in &buffer.events {
            match &record.kind {
                EventKind::Span {
                    kind,
                    start,
                    dur,
                    uids,
                    label,
                    ops,
                } => spans.push(AttributedSpan {
                    kind: *kind,
                    start: *start,
                    dur: *dur,
                    uids: uids.clone(),
                    label: *label,
                    ops: *ops,
                    mj: 0.0,
                }),
                EventKind::EnergySample { actual_mj, .. } => {
                    samples.push((record.at, *actual_mj));
                }
                EventKind::FrameCommit {
                    uid,
                    seq,
                    latency,
                    event,
                } => commits.push((record.at, *uid, *seq, event, *latency)),
                EventKind::ConfigSwitch { from, to, .. } => {
                    switch_times.push(record.at);
                    if from.core == to.core {
                        switch_dvfs += 1;
                    } else {
                        switch_migration += 1;
                    }
                }
                EventKind::Decision { target_ms, .. } => {
                    targets.push((record.at, record.seq, *target_ms));
                }
                EventKind::StyleStats {
                    matches_id,
                    matches_class,
                    matches_tag,
                    matches_universal,
                    ..
                } => {
                    bucket_counts = Some([
                        *matches_id,
                        *matches_class,
                        *matches_tag,
                        *matches_universal,
                    ]);
                }
                EventKind::RenderStats {
                    relayouts,
                    elements_laid_out,
                    subtree_reuses,
                    dirty_elements,
                    full_repaints,
                    partial_repaints,
                    items_emitted,
                    items_reused,
                    damage_items,
                    damage_area,
                } => {
                    render = RenderWork {
                        relayouts: *relayouts,
                        elements_laid_out: *elements_laid_out,
                        subtree_reuses: *subtree_reuses,
                        dirty_elements: *dirty_elements,
                        full_repaints: *full_repaints,
                        partial_repaints: *partial_repaints,
                        items_emitted: *items_emitted,
                        items_reused: *items_reused,
                        damage_items: *damage_items,
                        damage_area: *damage_area,
                    };
                }
                _ => {}
            }
        }
        // Apportion each inter-sample delta over overlapping spans. The
        // recorder orders spans by end time; sort by start so the
        // two-pointer sweep can advance monotonically.
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by_key(|&i| (spans[i].start, spans[i].end()));
        let mut idle_mj = 0.0;
        let mut cursor = 0usize;
        for window in samples.windows(2) {
            let (t0, mj0) = window[0];
            let (t1, mj1) = window[1];
            let delta = (mj1 - mj0).max(0.0);
            let len = t1.as_nanos().saturating_sub(t0.as_nanos()) as f64;
            if len <= 0.0 {
                idle_mj += delta;
                continue;
            }
            // Skip spans that ended before this interval; they can never
            // overlap a later one either.
            while cursor < order.len() && spans[order[cursor]].end() <= t0 {
                cursor += 1;
            }
            let mut covered = 0.0;
            let mut i = cursor;
            while i < order.len() && spans[order[i]].start < t1 {
                let span = &spans[order[i]];
                let lo = span.start.as_nanos().max(t0.as_nanos());
                let hi = span.end().as_nanos().min(t1.as_nanos());
                if hi > lo {
                    let overlap = (hi - lo) as f64;
                    spans[order[i]].mj += delta * overlap / len;
                    covered += overlap;
                }
                i += 1;
            }
            // The engine serializes main-thread spans, so `covered`
            // cannot exceed `len`; clamp anyway against zero-length
            // pathologies.
            idle_mj += delta * (1.0 - (covered / len).min(1.0));
        }
        let total_mj = samples.last().map_or(0.0, |&(_, mj)| mj);

        // Per-event and per-phase rollups. BTreeMap keeps uid order
        // deterministic.
        let mut phase_mj = [0.0f64; 6];
        let mut by_uid: BTreeMap<u64, EventAttribution> = BTreeMap::new();
        let blank = |uid: u64| EventAttribution {
            uid,
            label: "?".to_string(),
            dispatch: SimTime::ZERO,
            phase_mj: [0.0; 6],
            ops: 0,
            frames: 0,
        };
        let mut callbacks: BTreeMap<&'static str, CallbackCost> = BTreeMap::new();
        for span in &spans {
            let phase = phase_index(span.kind);
            phase_mj[phase] += span.mj;
            let share = if span.uids.is_empty() {
                0.0
            } else {
                span.mj / span.uids.len() as f64
            };
            for &uid in &span.uids {
                let row = by_uid.entry(uid).or_insert_with(|| blank(uid));
                row.phase_mj[phase] += share;
                if span.kind == SpanKind::Callback {
                    row.ops += span.ops;
                }
                if span.kind == SpanKind::Input {
                    row.dispatch = span.start;
                    if let Some(label) = span.label {
                        row.label = label.to_string();
                    }
                }
            }
            if span.kind == SpanKind::Callback {
                let entry = callbacks
                    .entry(span.label.unwrap_or("?"))
                    .or_insert_with(|| CallbackCost {
                        label: span.label.unwrap_or("?").to_string(),
                        count: 0,
                        total_ms: 0.0,
                        total_mj: 0.0,
                        total_ops: 0,
                    });
                entry.count += 1;
                entry.total_ms += span.dur.as_millis_f64();
                entry.total_mj += span.mj;
                entry.total_ops += span.ops;
            }
        }
        for &(_, uid, _, event, _) in &commits {
            let row = by_uid.entry(uid).or_insert_with(|| blank(uid));
            row.frames += 1;
            if row.label == "?" {
                row.label = event.to_string();
            }
        }

        // Deadline-miss forensics: judge each commit against the most
        // recent scheduler decision at or before it.
        let mut forensics = Vec::new();
        for &(at, uid, seq, event, latency) in &commits {
            let target = targets
                .iter()
                .take_while(|&&(t, _, _)| t <= at)
                .last()
                .map(|&(_, _, ms)| ms);
            let Some(target_ms) = target else { continue };
            let latency_ms = latency.as_millis_f64();
            if latency_ms <= target_ms {
                continue;
            }
            let window_start =
                SimTime::from_nanos(at.as_nanos().saturating_sub(latency.as_nanos()));
            let named: Vec<AttributedSpan> = order
                .iter()
                .map(|&i| &spans[i])
                .filter(|s| s.end() > window_start && s.start < at)
                .cloned()
                .collect();
            let switches_in_window = switch_times
                .iter()
                .filter(|&&t| t >= window_start && t <= at)
                .count() as u64;
            forensics.push(ViolationForensics {
                uid,
                seq,
                event: event.to_string(),
                at,
                latency_ms,
                target_ms,
                spans: named,
                switches_in_window,
            });
        }

        let mut callbacks: Vec<CallbackCost> = callbacks.into_values().collect();
        callbacks.sort_by(|a, b| {
            b.total_mj
                .total_cmp(&a.total_mj)
                .then_with(|| a.label.cmp(&b.label))
        });
        let counts = bucket_counts.unwrap_or([0; 4]);
        let matched: u64 = counts.iter().sum();
        let mut buckets: Vec<BucketCost> = ["id", "class", "tag", "universal"]
            .iter()
            .zip(counts)
            .map(|(&bucket, matches)| BucketCost {
                bucket,
                matches,
                share: if matched > 0 {
                    matches as f64 / matched as f64
                } else {
                    0.0
                },
            })
            .collect();
        buckets.sort_by(|a, b| {
            b.matches
                .cmp(&a.matches)
                .then_with(|| a.bucket.cmp(b.bucket))
        });

        AttributionProfile {
            events: by_uid.into_values().collect(),
            callbacks,
            buckets,
            forensics,
            render,
            phase_mj,
            idle_mj,
            unattributed_mj: 0.0,
            total_mj,
            switch_dvfs,
            switch_migration,
            dropped: buffer.dropped,
        }
    }

    /// The sparse roll-up a fleet sweep aggregates per job.
    pub fn summary(&self) -> AttributionSummary {
        let mut event_mj = Histogram::new();
        for event in &self.events {
            event_mj.record(event.total_mj());
        }
        AttributionSummary {
            phase_mj: self.phase_mj,
            idle_mj: self.idle_mj,
            unattributed_mj: self.unattributed_mj,
            total_mj: self.total_mj,
            misses: self.misses(),
            event_mj,
        }
    }

    /// Serializes the profile as deterministic single-document JSON —
    /// the format `evaluate diff` compares field-by-field.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.events.len() * 160);
        out.push_str("{\"profile\":\"greenweb-attribution-v1\",\"total_mj\":");
        push_f64(&mut out, self.total_mj);
        out.push_str(",\"attributed_mj\":");
        push_f64(&mut out, self.attributed_mj());
        out.push_str(",\"idle_mj\":");
        push_f64(&mut out, self.idle_mj);
        out.push_str(",\"unattributed_mj\":");
        push_f64(&mut out, self.unattributed_mj);
        out.push_str(",\"phase_mj\":");
        push_phases(&mut out, &self.phase_mj);
        let _ = write!(
            out,
            ",\"switches\":{{\"dvfs\":{},\"migration\":{}}},\"misses\":{},\"dropped\":{}",
            self.switch_dvfs,
            self.switch_migration,
            self.misses(),
            self.dropped
        );
        out.push_str(",\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"uid\":{},\"event\":", event.uid);
            push_json_str(&mut out, &event.label);
            out.push_str(",\"dispatch_ms\":");
            push_f64(&mut out, event.dispatch.as_nanos() as f64 / 1e6);
            out.push_str(",\"total_mj\":");
            push_f64(&mut out, event.total_mj());
            let _ = write!(
                out,
                ",\"ops\":{},\"frames\":{},\"phases\":",
                event.ops, event.frames
            );
            push_phases(&mut out, &event.phase_mj);
            out.push('}');
        }
        out.push_str("],\"callbacks\":[");
        for (i, cb) in self.callbacks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"event\":");
            push_json_str(&mut out, &cb.label);
            let _ = write!(out, ",\"count\":{},\"total_ms\":", cb.count);
            push_f64(&mut out, cb.total_ms);
            out.push_str(",\"total_mj\":");
            push_f64(&mut out, cb.total_mj);
            let _ = write!(out, ",\"ops\":{}}}", cb.total_ops);
        }
        out.push_str("],\"selector_buckets\":[");
        for (i, bucket) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"bucket\":\"{}\",\"matches\":{},\"share\":",
                bucket.bucket, bucket.matches
            );
            push_f64(&mut out, bucket.share);
            out.push('}');
        }
        let r = &self.render;
        let _ = write!(
            out,
            "],\"render\":{{\"relayouts\":{},\"elements_laid_out\":{},\
             \"subtree_reuses\":{},\"dirty_elements\":{},\"full_repaints\":{},\
             \"partial_repaints\":{},\"items_emitted\":{},\"items_reused\":{},\
             \"damage_items\":{},\"damage_area\":{}}}",
            r.relayouts,
            r.elements_laid_out,
            r.subtree_reuses,
            r.dirty_elements,
            r.full_repaints,
            r.partial_repaints,
            r.items_emitted,
            r.items_reused,
            r.damage_items,
            r.damage_area,
        );
        out.push_str(",\"forensics\":[");
        for (i, f) in self.forensics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"uid\":{},\"seq\":{},\"event\":", f.uid, f.seq);
            push_json_str(&mut out, &f.event);
            out.push_str(",\"at_ms\":");
            push_f64(&mut out, f.at.as_nanos() as f64 / 1e6);
            out.push_str(",\"latency_ms\":");
            push_f64(&mut out, f.latency_ms);
            out.push_str(",\"target_ms\":");
            push_f64(&mut out, f.target_ms);
            let _ = write!(
                out,
                ",\"switches_in_window\":{},\"spans\":[",
                f.switches_in_window
            );
            for (j, span) in f.spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"kind\":\"{}\",\"start_ms\":", span.kind.name());
                push_f64(&mut out, span.start.as_nanos() as f64 / 1e6);
                out.push_str(",\"dur_ms\":");
                push_f64(&mut out, span.dur.as_millis_f64());
                out.push_str(",\"mj\":");
                push_f64(&mut out, span.mj);
                out.push_str(",\"uids\":");
                push_uids(&mut out, &span.uids);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// Serializes the profile as Chrome trace-event JSON with attributed
    /// energy and VM ops in each slice's args — loads in Perfetto for
    /// flame-style inspection.
    pub fn flame_json(&self, process_name: &str) -> String {
        // Re-walk spans in deterministic start order.
        let mut out = String::with_capacity(256 + self.events.len() * 200);
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":",
        );
        push_json_str(&mut out, process_name);
        out.push_str("}}");
        for forensic in &self.forensics {
            for span in &forensic.spans {
                out.push_str(",\n");
                open_event(
                    &mut out,
                    span.kind.name(),
                    "attribution",
                    'X',
                    1,
                    span.start.as_nanos() as f64 / 1000.0,
                );
                out.push_str(",\"dur\":");
                push_f64(&mut out, span.dur.as_nanos() as f64 / 1000.0);
                out.push_str(",\"args\":{\"mj\":");
                push_f64(&mut out, span.mj);
                let _ = write!(out, ",\"ops\":{},\"uids\":", span.ops);
                push_uids(&mut out, &span.uids);
                let _ = write!(out, ",\"miss_uid\":{}}}}}", forensic.uid);
            }
        }
        for event in &self.events {
            out.push_str(",\n");
            open_event(
                &mut out,
                &event.label,
                "event-energy",
                'C',
                0,
                event.dispatch.as_nanos() as f64 / 1000.0,
            );
            out.push_str(",\"args\":{\"mj\":");
            push_f64(&mut out, event.total_mj());
            out.push_str("}}");
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Renders the human-facing top-N tables.
    pub fn render_tables(&self, top_n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "attribution: {:.3} mJ total — {:.3} attributed over {} events, {:.3} idle, {:.3} unattributed",
            self.total_mj,
            self.attributed_mj(),
            self.events.len(),
            self.idle_mj,
            self.unattributed_mj,
        );
        out.push_str("phase energy (mJ):");
        for (kind, mj) in SpanKind::ALL.iter().zip(self.phase_mj) {
            let _ = write!(out, "  {} {:.3}", kind.name(), mj);
        }
        out.push('\n');
        let mut ranked: Vec<&EventAttribution> = self.events.iter().collect();
        ranked.sort_by(|a, b| {
            b.total_mj()
                .total_cmp(&a.total_mj())
                .then_with(|| a.uid.cmp(&b.uid))
        });
        let _ = writeln!(out, "top events by energy (of {}):", ranked.len());
        for event in ranked.iter().take(top_n) {
            let _ = writeln!(
                out,
                "  uid={:<4} {:<12} {:9.3} mJ  ops={:<8} frames={}",
                event.uid,
                event.label,
                event.total_mj(),
                event.ops,
                event.frames,
            );
        }
        let _ = writeln!(
            out,
            "top callbacks by energy (of {}):",
            self.callbacks.len()
        );
        for cb in self.callbacks.iter().take(top_n) {
            let _ = writeln!(
                out,
                "  {:<12} n={:<5} {:9.3} mJ {:9.2} ms  ops={}",
                cb.label, cb.count, cb.total_mj, cb.total_ms, cb.total_ops,
            );
        }
        out.push_str("selector buckets (exact walks):");
        for bucket in &self.buckets {
            let _ = write!(
                out,
                "  {} {} ({:.1}%)",
                bucket.bucket,
                bucket.matches,
                bucket.share * 100.0
            );
        }
        out.push('\n');
        let r = &self.render;
        let _ = writeln!(
            out,
            "render: {} relayouts, {} laid out ({} dirty, {} subtree reuses), \
             paint {} full / {} partial, damage {} items / {} px2",
            r.relayouts,
            r.elements_laid_out,
            r.dirty_elements,
            r.subtree_reuses,
            r.full_repaints,
            r.partial_repaints,
            r.damage_items,
            r.damage_area,
        );
        let _ = writeln!(
            out,
            "config switches: {} dvfs, {} migration",
            self.switch_dvfs, self.switch_migration
        );
        let _ = writeln!(out, "deadline misses: {}", self.misses());
        for f in self.forensics.iter().take(top_n) {
            let _ = writeln!(
                out,
                "  miss uid={} seq={} event={} latency {:.2} ms > target {:.2} ms ({} switches in window)",
                f.uid, f.seq, f.event, f.latency_ms, f.target_ms, f.switches_in_window,
            );
            let mut costly: Vec<&AttributedSpan> = f.spans.iter().collect();
            costly.sort_by(|a, b| {
                b.mj.total_cmp(&a.mj)
                    .then_with(|| (a.start, a.dur.as_nanos()).cmp(&(b.start, b.dur.as_nanos())))
            });
            for span in costly.iter().take(4) {
                let _ = writeln!(
                    out,
                    "    {:<9} {:8.3} mJ {:8.2} ms",
                    span.kind.name(),
                    span.mj,
                    span.dur.as_millis_f64(),
                );
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "  (ring dropped {} oldest events; attribution undercounts)",
                self.dropped
            );
        }
        out
    }
}

fn push_phases(out: &mut String, phases: &[f64; 6]) {
    out.push('{');
    for (i, (kind, mj)) in SpanKind::ALL.iter().zip(phases).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", kind.name());
        push_f64(out, *mj);
    }
    out.push('}');
}

/// The bounded-size roll-up one sweep job contributes to the corpus
/// report: per-phase energy sums plus a log-bucketed histogram of
/// per-event totals. Merging is field-wise addition and
/// [`Histogram::merge`], so corpus aggregation is exact and
/// order-insensitive for everything derived from buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionSummary {
    /// Energy per pipeline phase, indexed like [`SpanKind::ALL`].
    pub phase_mj: [f64; 6],
    /// Energy no span covered.
    pub idle_mj: f64,
    /// Energy no sample interval could place.
    pub unattributed_mj: f64,
    /// Ground-truth total.
    pub total_mj: f64,
    /// Deadline misses.
    pub misses: u64,
    /// Per-event total energy distribution (mJ recorded into the
    /// millisecond-scaled histogram — scale-free log buckets).
    pub event_mj: Histogram,
}

impl AttributionSummary {
    /// The all-zero summary.
    pub fn new() -> AttributionSummary {
        AttributionSummary {
            phase_mj: [0.0; 6],
            idle_mj: 0.0,
            unattributed_mj: 0.0,
            total_mj: 0.0,
            misses: 0,
            event_mj: Histogram::new(),
        }
    }

    /// Folds another job's summary into this one.
    pub fn merge(&mut self, other: &AttributionSummary) {
        for (mine, theirs) in self.phase_mj.iter_mut().zip(other.phase_mj) {
            *mine += theirs;
        }
        self.idle_mj += other.idle_mj;
        self.unattributed_mj += other.unattributed_mj;
        self.total_mj += other.total_mj;
        self.misses += other.misses;
        self.event_mj.merge(&other.event_mj);
    }
}

impl Default for AttributionSummary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceHandle;
    use greenweb_acmp::{CoreType, CpuConfig};

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// Two inputs; input 0's callback and paint run inside the first
    /// sample interval, input 1's style inside the second.
    fn synthetic_buffer() -> TraceBuffer {
        let trace = TraceHandle::with_capacity(64);
        let span = |kind, start: u64, dur: u64, uid: u64, label, ops| EventKind::Span {
            kind,
            start: ms(start),
            dur: Duration::from_millis(dur),
            uids: vec![uid],
            label,
            ops,
        };
        trace.record(ms(0), span(SpanKind::Input, 0, 0, 0, Some("click"), 0));
        trace.record(ms(4), span(SpanKind::Callback, 0, 4, 0, Some("click"), 100));
        trace.record(ms(8), span(SpanKind::Paint, 4, 4, 0, None, 0));
        trace.record(
            ms(16),
            EventKind::EnergySample {
                actual_mj: 16.0,
                metered_mj: 16.0,
                power_mw: 1000.0,
                config: CpuConfig::new(CoreType::Big, 1000),
                busy: true,
            },
        );
        trace.record(ms(17), span(SpanKind::Input, 17, 0, 1, Some("scroll"), 0));
        trace.record(ms(24), span(SpanKind::Style, 20, 4, 1, None, 0));
        trace.record(
            ms(32),
            EventKind::EnergySample {
                actual_mj: 24.0,
                metered_mj: 24.0,
                power_mw: 500.0,
                config: CpuConfig::new(CoreType::Little, 600),
                busy: false,
            },
        );
        trace.snapshot()
    }

    #[test]
    fn energy_is_conserved_and_apportioned_by_overlap() {
        let profile = AttributionProfile::from_trace(&synthetic_buffer());
        assert_eq!(profile.total_mj, 24.0);
        // First interval: 16 mJ over 16 ms; callback covers 4 ms (4 mJ),
        // paint 4 ms (4 mJ), idle 8 ms (8 mJ). Second: 8 mJ over 16 ms;
        // style covers 4 ms (2 mJ), idle 12 ms (6 mJ).
        assert!((profile.phase_mj[phase_index(SpanKind::Callback)] - 4.0).abs() < 1e-9);
        assert!((profile.phase_mj[phase_index(SpanKind::Paint)] - 4.0).abs() < 1e-9);
        assert!((profile.phase_mj[phase_index(SpanKind::Style)] - 2.0).abs() < 1e-9);
        assert!((profile.idle_mj - 14.0).abs() < 1e-9);
        let conserved = profile.attributed_mj() + profile.idle_mj + profile.unattributed_mj;
        assert!((conserved - profile.total_mj).abs() < 1e-9);
        // Per-event rows.
        assert_eq!(profile.events.len(), 2);
        assert_eq!(profile.events[0].label, "click");
        assert!((profile.events[0].total_mj() - 8.0).abs() < 1e-9);
        assert_eq!(profile.events[0].ops, 100);
        assert_eq!(profile.events[1].label, "scroll");
        // Callback ranking.
        assert_eq!(profile.callbacks.len(), 1);
        assert_eq!(profile.callbacks[0].label, "click");
        assert_eq!(profile.callbacks[0].total_ops, 100);
    }

    #[test]
    fn forensics_name_overlapping_spans() {
        let trace = TraceHandle::with_capacity(64);
        trace.record(
            ms(0),
            EventKind::Decision {
                target_ms: 10.0,
                predicted_ms: None,
                chosen: CpuConfig::new(CoreType::Big, 1000),
                profiling: true,
            },
        );
        trace.record(
            ms(20),
            EventKind::Span {
                kind: SpanKind::Paint,
                start: ms(5),
                dur: Duration::from_millis(15),
                uids: vec![7],
                label: None,
                ops: 0,
            },
        );
        trace.record(
            ms(21),
            EventKind::FrameCommit {
                uid: 7,
                seq: 0,
                latency: Duration::from_millis(21),
                event: "click",
            },
        );
        let profile = AttributionProfile::from_trace(&trace.snapshot());
        assert_eq!(profile.misses(), 1);
        let f = &profile.forensics[0];
        assert_eq!(f.uid, 7);
        assert_eq!(f.spans.len(), 1);
        assert_eq!(f.spans[0].kind, SpanKind::Paint);
        // Named span overlaps the missed frame's interval [0, 21].
        assert!(f.spans[0].start < f.at);
        assert!(f.spans[0].end().as_nanos() > f.at.as_nanos() - 21_000_000);
    }

    #[test]
    fn profile_render_is_deterministic() {
        let a = AttributionProfile::from_trace(&synthetic_buffer());
        let b = AttributionProfile::from_trace(&synthetic_buffer());
        assert_eq!(a, b);
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.flame_json("x"), b.flame_json("x"));
        assert_eq!(a.render_tables(5), b.render_tables(5));
    }

    #[test]
    fn summary_merge_is_fieldwise() {
        let profile = AttributionProfile::from_trace(&synthetic_buffer());
        let mut merged = AttributionSummary::new();
        merged.merge(&profile.summary());
        merged.merge(&profile.summary());
        assert!((merged.total_mj - 2.0 * profile.total_mj).abs() < 1e-9);
        assert_eq!(merged.event_mj.count(), 4);
        assert_eq!(merged.misses, 0);
    }
}
