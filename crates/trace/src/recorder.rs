//! The ring-buffered recorder and the shared handle instrumentation
//! sites hold.

use crate::event::{EventKind, TraceRecord};
use greenweb_acmp::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Default ring capacity: comfortably holds a full-interaction run
/// (a 16 s trace emits a few thousand events) while bounding memory for
/// pathological ones.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A bounded, deterministic event recorder.
///
/// Events are appended in simulation order; when the ring is full the
/// oldest event is evicted and counted in `dropped`. Eviction is as
/// deterministic as insertion, so two identical runs drop identical
/// prefixes.
#[derive(Debug)]
pub struct TraceRecorder {
    events: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceRecorder {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceRecorder {
            events: VecDeque::new(),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends one event at `at`.
    pub fn record(&mut self, at: SimTime, kind: EventKind) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(TraceRecord { at, seq, kind });
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Copies the current contents into an owned, immutable buffer.
    pub fn snapshot(&self) -> TraceBuffer {
        TraceBuffer {
            events: self.events.iter().cloned().collect(),
            dropped: self.dropped,
        }
    }
}

/// An immutable snapshot of a recorder's contents, in insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBuffer {
    /// The recorded events, oldest first.
    pub events: Vec<TraceRecord>,
    /// Events evicted by the ring before this snapshot.
    pub dropped: u64,
}

impl TraceBuffer {
    /// Iterates the span events only.
    pub fn spans(&self) -> impl Iterator<Item = &TraceRecord> {
        self.events
            .iter()
            .filter(|r| matches!(r.kind, EventKind::Span { .. }))
    }

    /// Number of events whose kind-name equals `name` (see
    /// [`EventKind::name`]).
    pub fn count_of(&self, name: &str) -> usize {
        self.events.iter().filter(|r| r.kind.name() == name).count()
    }
}

/// A cloneable, shared handle to one [`TraceRecorder`].
///
/// The engine is single-threaded, so the handle is an
/// `Rc<RefCell<..>>`: the browser, the scheduler, and any decorators
/// all append to the same ring. Cloning the handle only bumps a
/// reference count — it never allocates.
#[derive(Debug, Clone)]
pub struct TraceHandle(Rc<RefCell<TraceRecorder>>);

impl TraceHandle {
    /// A handle over a fresh recorder with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A handle over a fresh recorder holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceHandle(Rc::new(RefCell::new(TraceRecorder::with_capacity(
            capacity,
        ))))
    }

    /// Appends one event at `at`.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within another `record` (the
    /// engine never does).
    pub fn record(&self, at: SimTime, kind: EventKind) {
        self.0.borrow_mut().record(at, kind);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Events evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.0.borrow().dropped()
    }

    /// Copies the current contents into an owned buffer.
    pub fn snapshot(&self) -> TraceBuffer {
        self.0.borrow().snapshot()
    }
}

impl Default for TraceHandle {
    fn default() -> Self {
        Self::new()
    }
}

/// Records into an optional sink, building the payload lazily.
///
/// This is the shape every instrumentation site uses: the closure that
/// constructs the event (and any `Vec`/`String` it owns) only runs when
/// a recorder is attached, so the detached path is a branch on a
/// discriminant — no allocation, no payload construction.
#[inline]
pub fn record_into(sink: &Option<TraceHandle>, at: SimTime, make: impl FnOnce() -> EventKind) {
    if let Some(trace) = sink {
        trace.record(at, make());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;
    use greenweb_acmp::Duration;

    fn span(u: u64) -> EventKind {
        EventKind::Span {
            kind: SpanKind::Style,
            start: SimTime::from_millis(u),
            dur: Duration::from_millis(1),
            uids: vec![u],
            label: None,
            ops: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut rec = TraceRecorder::with_capacity(3);
        for u in 0..5 {
            rec.record(SimTime::from_millis(u), span(u));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let buf = rec.snapshot();
        // Oldest two evicted; sequence numbers keep counting.
        assert_eq!(buf.events[0].seq, 2);
        assert_eq!(buf.events[2].seq, 4);
        assert_eq!(buf.dropped, 2);
    }

    #[test]
    fn handle_is_shared() {
        let a = TraceHandle::with_capacity(16);
        let b = a.clone();
        a.record(SimTime::ZERO, EventKind::Vsync);
        b.record(SimTime::from_millis(1), EventKind::Vsync);
        assert_eq!(a.len(), 2);
        assert_eq!(b.snapshot().count_of("vsync"), 2);
    }

    #[test]
    fn record_into_skips_closure_when_detached() {
        let mut ran = false;
        record_into(&None, SimTime::ZERO, || {
            ran = true;
            EventKind::Vsync
        });
        assert!(!ran, "payload must not be built without a recorder");
        let handle = TraceHandle::with_capacity(4);
        let sink = Some(handle.clone());
        record_into(&sink, SimTime::ZERO, || EventKind::Vsync);
        assert_eq!(handle.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        TraceRecorder::with_capacity(0);
    }
}
