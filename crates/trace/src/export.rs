//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! and a compact text flamegraph summary.
//!
//! The JSON is hand-written (the workspace builds offline, with no
//! serde): every formatting decision is deterministic — integer
//! nanosecond timestamps divided to microseconds, `f64` via Rust's
//! shortest-round-trip `Display` — so identical runs export identical
//! bytes.

use crate::event::{EventKind, SpanKind, TraceRecord};
use crate::metrics::MetricsRegistry;
use crate::recorder::TraceBuffer;
use greenweb_acmp::SimTime;
use std::fmt::Write as _;

/// The simulated process id every event maps to.
const PID: u32 = 1;

/// The simulated threads, as Perfetto tracks: `(tid, name)`.
/// The main thread carries callback + rendering-stage spans (the engine
/// serializes them, so spans never overlap); input dispatch, VSync,
/// scheduler activity, faults, and frame commits each get their own
/// track.
const THREADS: [(u32, &str); 6] = [
    (1, "main"),
    (2, "input"),
    (3, "vsync"),
    (4, "scheduler"),
    (5, "faults"),
    (6, "frames"),
];

fn ts_us(at: SimTime) -> f64 {
    at.as_nanos() as f64 / 1000.0
}

pub(crate) fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        // Rust's Display for f64 is the shortest round-trip form —
        // compact, exact, and deterministic.
        let _ = write!(out, "{value}");
    } else {
        out.push('0');
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Opens one event object with the common fields.
pub(crate) fn open_event(out: &mut String, name: &str, cat: &str, ph: char, tid: u32, ts: f64) {
    out.push_str("{\"name\":");
    push_json_str(out, name);
    out.push_str(",\"cat\":");
    push_json_str(out, cat);
    let _ = write!(out, ",\"ph\":\"{ph}\",\"pid\":{PID},\"tid\":{tid},\"ts\":");
    push_f64(out, ts);
}

pub(crate) fn push_uids(out: &mut String, uids: &[u64]) {
    out.push('[');
    for (i, uid) in uids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{uid}");
    }
    out.push(']');
}

fn write_event(out: &mut String, record: &TraceRecord) {
    match &record.kind {
        EventKind::Span {
            kind,
            start,
            dur,
            uids,
            label,
            ops,
        } => {
            let (tid, cat) = if *kind == SpanKind::Input {
                (2, "input")
            } else {
                (1, "pipeline")
            };
            open_event(out, kind.name(), cat, 'X', tid, ts_us(*start));
            out.push_str(",\"dur\":");
            push_f64(out, dur.as_nanos() as f64 / 1000.0);
            out.push_str(",\"args\":{\"uids\":");
            push_uids(out, uids);
            let _ = write!(out, ",\"ops\":{ops}");
            if let Some(label) = label {
                out.push_str(",\"event\":");
                push_json_str(out, label);
            }
            out.push_str("}}");
        }
        EventKind::Vsync => {
            open_event(out, "vsync", "vsync", 'I', 3, ts_us(record.at));
            out.push_str(",\"s\":\"t\"}");
        }
        EventKind::Decision {
            target_ms,
            predicted_ms,
            chosen,
            profiling,
        } => {
            open_event(out, "decision", "scheduler", 'I', 4, ts_us(record.at));
            out.push_str(",\"s\":\"t\",\"args\":{\"target_ms\":");
            push_f64(out, *target_ms);
            out.push_str(",\"predicted_ms\":");
            match predicted_ms {
                Some(p) => push_f64(out, *p),
                None => out.push_str("null"),
            }
            out.push_str(",\"config\":");
            push_json_str(out, &chosen.to_string());
            let _ = write!(out, ",\"profiling\":{profiling}}}}}");
        }
        EventKind::ConfigSwitch { from, to, penalty } => {
            open_event(out, "config-switch", "scheduler", 'I', 4, ts_us(record.at));
            out.push_str(",\"s\":\"t\",\"args\":{\"from\":");
            push_json_str(out, &from.to_string());
            out.push_str(",\"to\":");
            push_json_str(out, &to.to_string());
            let kind = if from.core == to.core {
                "dvfs"
            } else {
                "migration"
            };
            out.push_str(",\"kind\":");
            push_json_str(out, kind);
            out.push_str(",\"penalty_us\":");
            push_f64(out, penalty.as_nanos() as f64 / 1000.0);
            out.push_str("}}");
        }
        EventKind::Ladder { from, to } => {
            open_event(out, "ladder", "scheduler", 'I', 4, ts_us(record.at));
            out.push_str(",\"s\":\"t\",\"args\":{\"from\":");
            push_json_str(out, from);
            out.push_str(",\"to\":");
            push_json_str(out, to);
            out.push_str("}}");
        }
        EventKind::Fault { category, detail } => {
            open_event(out, category, "fault", 'I', 5, ts_us(record.at));
            out.push_str(",\"s\":\"t\",\"args\":{\"detail\":");
            push_json_str(out, detail);
            out.push_str("}}");
        }
        EventKind::EnergySample {
            actual_mj,
            metered_mj,
            power_mw,
            config,
            busy: _,
        } => {
            open_event(out, "energy_mj", "power", 'C', 0, ts_us(record.at));
            out.push_str(",\"args\":{\"actual\":");
            push_f64(out, *actual_mj);
            out.push_str(",\"metered\":");
            push_f64(out, *metered_mj);
            out.push_str("}},\n");
            open_event(out, "power_mw", "power", 'C', 0, ts_us(record.at));
            out.push_str(",\"args\":{\"mw\":");
            push_f64(out, *power_mw);
            out.push_str("}},\n");
            open_event(out, "freq_mhz", "power", 'C', 0, ts_us(record.at));
            let _ = write!(out, ",\"args\":{{\"mhz\":{}}}}}", config.freq_mhz);
        }
        EventKind::StyleStats {
            resolves,
            matches,
            matches_id,
            matches_class,
            matches_tag,
            matches_universal,
            bloom_rejects,
            cache_hits,
            cache_misses,
            cache_invalidations_avoided,
        } => {
            open_event(out, "style-stats", "style", 'I', 1, ts_us(record.at));
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"resolves\":{resolves},\"matches\":{matches},\
                 \"matches_id\":{matches_id},\"matches_class\":{matches_class},\
                 \"matches_tag\":{matches_tag},\"matches_universal\":{matches_universal},\
                 \"bloom_rejects\":{bloom_rejects},\"cache_hits\":{cache_hits},\
                 \"cache_misses\":{cache_misses},\
                 \"cache_invalidations_avoided\":{cache_invalidations_avoided}}}}}"
            );
        }
        EventKind::RenderStats {
            relayouts,
            elements_laid_out,
            subtree_reuses,
            dirty_elements,
            full_repaints,
            partial_repaints,
            items_emitted,
            items_reused,
            damage_items,
            damage_area,
        } => {
            open_event(out, "render-stats", "render", 'I', 1, ts_us(record.at));
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"relayouts\":{relayouts},\
                 \"elements_laid_out\":{elements_laid_out},\
                 \"subtree_reuses\":{subtree_reuses},\
                 \"dirty_elements\":{dirty_elements},\
                 \"full_repaints\":{full_repaints},\
                 \"partial_repaints\":{partial_repaints},\
                 \"items_emitted\":{items_emitted},\"items_reused\":{items_reused},\
                 \"damage_items\":{damage_items},\"damage_area\":{damage_area}}}}}"
            );
        }
        EventKind::FrameCommit {
            uid,
            seq,
            latency,
            event,
        } => {
            open_event(out, "frame", "frames", 'I', 6, ts_us(record.at));
            let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"uid\":{uid},\"seq\":{seq}");
            out.push_str(",\"latency_ms\":");
            push_f64(out, latency.as_millis_f64());
            out.push_str(",\"event\":");
            push_json_str(out, event);
            out.push_str("}}");
        }
    }
}

/// Serializes `buffer` as Chrome trace-event JSON.
///
/// The result loads in Perfetto (<https://ui.perfetto.dev>) and
/// `chrome://tracing`: one simulated process named after
/// `process_name`, with the main thread, input dispatch, VSync,
/// scheduler, faults, and frame commits as separate threads, and
/// energy/power/frequency as counter tracks. One event per line, so
/// traces diff cleanly.
pub fn chrome_trace_json(buffer: &TraceBuffer, process_name: &str) -> String {
    let mut out = String::with_capacity(256 + buffer.events.len() * 160);
    out.push_str("{\"traceEvents\":[\n");
    // Metadata: process and thread names.
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":");
    push_json_str(&mut out, process_name);
    out.push_str("}}");
    for (tid, name) in THREADS {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":"
        );
        push_json_str(&mut out, name);
        let _ = write!(
            out,
            "}}}},\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}"
        );
    }
    for record in &buffer.events {
        out.push_str(",\n");
        write_event(&mut out, record);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders a compact flamegraph-style summary: main-thread self time
/// per pipeline stage with share bars and percentiles. The engine
/// serializes all stages on one thread, so self time equals span time.
pub fn flame_summary(buffer: &TraceBuffer) -> String {
    let registry = MetricsRegistry::from_trace(buffer);
    let mut rows: Vec<(SpanKind, f64)> = Vec::new();
    let mut total_ms = 0.0;
    for kind in SpanKind::ALL {
        let mut ms = 0.0;
        for record in buffer.spans() {
            if let EventKind::Span { kind: k, dur, .. } = &record.kind {
                if *k == kind {
                    ms += dur.as_millis_f64();
                }
            }
        }
        total_ms += ms;
        rows.push((kind, ms));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flame: pipeline time by stage (total {total_ms:.1} ms)"
    );
    let max_ms = rows.iter().map(|(_, ms)| *ms).fold(0.0, f64::max);
    for (kind, ms) in rows {
        let summary = registry.stage_summary(kind);
        let share = if total_ms > 0.0 {
            100.0 * ms / total_ms
        } else {
            0.0
        };
        let width = if max_ms > 0.0 {
            ((ms / max_ms) * 24.0).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "  {:<9} {:<24} {:5.1}% {:9.1} ms  n={:<5} p50 {:6.2}  p95 {:6.2}  p99 {:6.2} ms",
            kind.name(),
            "#".repeat(width),
            share,
            ms,
            summary.count,
            summary.p50_ms,
            summary.p95_ms,
            summary.p99_ms,
        );
    }
    if buffer.dropped > 0 {
        let _ = writeln!(
            out,
            "  (ring dropped {} oldest events; totals undercount)",
            buffer.dropped
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceHandle;
    use greenweb_acmp::{CoreType, CpuConfig, Duration};

    fn sample_buffer() -> TraceBuffer {
        let trace = TraceHandle::with_capacity(64);
        trace.record(
            SimTime::from_millis(1),
            EventKind::Span {
                kind: SpanKind::Callback,
                start: SimTime::ZERO,
                dur: Duration::from_millis(1),
                uids: vec![0, 1],
                label: Some("click"),
                ops: 42,
            },
        );
        trace.record(SimTime::from_millis(16), EventKind::Vsync);
        trace.record(
            SimTime::from_millis(16),
            EventKind::Decision {
                target_ms: 33.3,
                predicted_ms: Some(12.5),
                chosen: CpuConfig::new(CoreType::Big, 1000),
                profiling: false,
            },
        );
        trace.record(
            SimTime::from_millis(16),
            EventKind::EnergySample {
                actual_mj: 10.0,
                metered_mj: 9.5,
                power_mw: 750.0,
                config: CpuConfig::new(CoreType::Big, 1000),
                busy: true,
            },
        );
        trace.record(
            SimTime::from_millis(17),
            EventKind::Fault {
                category: "vsync",
                detail: "tick \"dropped\"\n".to_string(),
            },
        );
        trace.snapshot()
    }

    /// A minimal JSON well-formedness check: balanced structure and
    /// properly terminated strings.
    fn assert_balanced_json(json: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced JSON");
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth, 0, "unbalanced JSON");
    }

    #[test]
    fn chrome_json_is_wellformed_and_typed() {
        let json = chrome_trace_json(&sample_buffer(), "demo \"app\"");
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""), "span event missing");
        assert!(json.contains("\"ph\":\"I\""), "instant event missing");
        assert!(json.contains("\"ph\":\"C\""), "counter event missing");
        assert!(json.contains("\"name\":\"callback\""));
        assert!(json.contains("\"uids\":[0,1]"));
        assert!(json.contains("\"ops\":42"), "span ops missing");
        assert!(json.contains("\"predicted_ms\":12.5"));
        assert!(json.contains("demo \\\"app\\\""), "escaping broken");
        assert!(json.contains("tick \\\"dropped\\\"\\n"));
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_json(&sample_buffer(), "x");
        let b = chrome_trace_json(&sample_buffer(), "x");
        assert_eq!(a, b);
    }

    #[test]
    fn flame_summary_lists_all_stages() {
        let text = flame_summary(&sample_buffer());
        for kind in SpanKind::ALL {
            assert!(text.contains(kind.name()), "{} missing", kind.name());
        }
        assert!(text.contains("n=1"));
    }
}
