//! Deterministic merging of per-job trace buffers.
//!
//! When a batch of simulations runs in parallel, each job records into
//! its own [`TraceBuffer`] (a `TraceHandle` is `Rc`-backed and must
//! never be shared across threads). To export one Perfetto timeline for
//! the whole batch, the buffers are merged with a *stable* order that
//! depends only on the jobs' inputs — `(SimTime, job index, seq)` —
//! never on which worker finished first. A parallel batch therefore
//! exports byte-identical JSON to the same batch run serially.

use crate::event::TraceRecord;
use crate::recorder::TraceBuffer;

/// Merges per-job buffers into one timeline.
///
/// Records are ordered by `(timestamp, job index, per-job seq)` and
/// re-sequenced `0..` in merged order, so the result is independent of
/// worker scheduling: callers must pass buffers in *job* order (the
/// order the jobs were described, which a deterministic executor
/// preserves by slotting results back by index). Ring-eviction counts
/// are summed.
pub fn merge_buffers(buffers: &[TraceBuffer]) -> TraceBuffer {
    let mut events: Vec<(usize, &TraceRecord)> = Vec::new();
    let mut dropped = 0;
    for (job, buffer) in buffers.iter().enumerate() {
        dropped += buffer.dropped;
        events.extend(buffer.events.iter().map(|record| (job, record)));
    }
    // Each buffer is already (at, seq)-sorted, so a stable sort on the
    // full key is a cheap k-way interleave; the job index breaks ties
    // between simultaneous events of different jobs.
    events.sort_by_key(|(job, record)| (record.at, *job, record.seq));
    TraceBuffer {
        events: events
            .into_iter()
            .enumerate()
            .map(|(seq, (_, record))| TraceRecord {
                at: record.at,
                seq: seq as u64,
                kind: record.kind.clone(),
            })
            .collect(),
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::recorder::TraceHandle;
    use greenweb_acmp::SimTime;

    fn buffer_at(millis: &[u64]) -> TraceBuffer {
        let handle = TraceHandle::with_capacity(16);
        for &ms in millis {
            handle.record(SimTime::from_millis(ms), EventKind::Vsync);
        }
        handle.snapshot()
    }

    #[test]
    fn merge_orders_by_time_then_job() {
        let a = buffer_at(&[10, 30]);
        let b = buffer_at(&[10, 20]);
        let merged = merge_buffers(&[a, b]);
        let times: Vec<u64> = merged
            .events
            .iter()
            .map(|r| r.at.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(times, vec![10, 10, 20, 30]);
        // The t=10 tie goes to job 0 (the first buffer).
        assert_eq!(merged.events[0].seq, 0);
        let seqs: Vec<u64> = merged.events.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "merged buffer is re-sequenced");
    }

    #[test]
    fn merge_is_deterministic_and_sums_drops() {
        let handle = TraceHandle::with_capacity(1);
        handle.record(SimTime::from_millis(1), EventKind::Vsync);
        handle.record(SimTime::from_millis(2), EventKind::Vsync);
        let lossy = handle.snapshot();
        assert_eq!(lossy.dropped, 1);
        let a = merge_buffers(&[lossy.clone(), buffer_at(&[5])]);
        let b = merge_buffers(&[lossy, buffer_at(&[5])]);
        assert_eq!(a, b);
        assert_eq!(a.dropped, 1);
    }

    #[test]
    fn merge_of_empty_is_empty() {
        let merged = merge_buffers(&[]);
        assert!(merged.events.is_empty());
        assert_eq!(merged.dropped, 0);
    }
}
