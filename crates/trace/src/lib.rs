//! # greenweb-trace
//!
//! Structured tracing for the GreenWeb simulator: a deterministic,
//! ring-buffered span/event recorder, a metrics registry with
//! log-bucketed latency histograms, and exporters producing Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`) and a
//! compact text flamegraph summary.
//!
//! The paper's argument is built on *per-frame* attribution (Fig. 7's
//! frame lifetime, Fig. 8's metadata propagation); this crate records
//! that lifetime as typed events — one span per pipeline stage
//! (input → callback → style → layout → paint → composite), VSync
//! ticks, scheduler decisions with their "why" (QoS target, predicted
//! latency, chosen configuration), configuration switches with the
//! DVFS/migration cost charged, degradation-ladder transitions,
//! injected faults, and energy-accounting samples (metered vs. ground
//! truth).
//!
//! Two properties are load-bearing:
//!
//! * **Determinism.** Events are keyed on integer-nanosecond
//!   [`SimTime`](greenweb_acmp::SimTime) plus a monotonically increasing
//!   sequence number; the simulator is deterministic, so identical
//!   seeds produce byte-identical exported traces.
//! * **Zero cost when off.** Instrumentation sites hold an
//!   `Option<TraceHandle>` and build event payloads inside a closure
//!   that only runs when a recorder is attached ([`record_into`]); the
//!   detached path performs no allocation (verified by a
//!   counting-allocator test).
//!
//! ```
//! use greenweb_acmp::{Duration, SimTime};
//! use greenweb_trace::{chrome_trace_json, EventKind, SpanKind, TraceHandle};
//!
//! let trace = TraceHandle::new();
//! trace.record(
//!     SimTime::from_millis(16),
//!     EventKind::Span {
//!         kind: SpanKind::Style,
//!         start: SimTime::from_millis(15),
//!         dur: Duration::from_millis(1),
//!         uids: vec![0],
//!         label: None,
//!         ops: 0,
//!     },
//! );
//! let json = chrome_trace_json(&trace.snapshot(), "demo");
//! assert!(json.contains("\"name\":\"style\""));
//! ```

#![forbid(unsafe_code)]

pub mod attribution;
pub mod event;
pub mod export;
pub mod merge;
pub mod metrics;
pub mod recorder;

pub use attribution::{
    AttributionProfile, AttributionSummary, EventAttribution, ViolationForensics,
};
pub use event::{EventKind, SpanKind, TraceRecord};
pub use export::{chrome_trace_json, flame_summary};
pub use merge::merge_buffers;
pub use metrics::{Histogram, LatencySummary, MetricsRegistry};
pub use recorder::{record_into, TraceBuffer, TraceHandle, TraceRecorder};
