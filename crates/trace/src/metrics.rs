//! The metrics registry: log-bucketed latency histograms and counters.
//!
//! Buckets grow by a factor of 2^(1/4) (≈ 1.19), giving quantile
//! estimates within ~9 % relative error across six decades — the
//! HdrHistogram trade-off without the dependency. Registry iteration is
//! `BTreeMap`-ordered, so rendered tables are deterministic.

use crate::event::{EventKind, SpanKind};
use crate::recorder::TraceBuffer;
use std::collections::BTreeMap;

/// Sub-buckets per power of two.
const SUB: f64 = 4.0;
/// Smallest distinguishable value (1 µs when recording milliseconds).
const MIN_VALUE: f64 = 1e-3;
/// Bucket count: `1 + 4·28` covers `MIN_VALUE · 2^28` ≈ 268 s in ms.
const BUCKETS: usize = 113;

/// A log-bucketed histogram of latencies in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(value: f64) -> usize {
        if value < MIN_VALUE {
            return 0;
        }
        let index = 1 + (SUB * (value / MIN_VALUE).log2()).floor() as usize;
        index.min(BUCKETS - 1)
    }

    /// The geometric midpoint the bucket at `index` represents.
    fn bucket_value(index: usize) -> f64 {
        if index == 0 {
            return MIN_VALUE / 2.0;
        }
        MIN_VALUE * ((index as f64 - 0.5) / SUB).exp2()
    }

    /// Records one value (milliseconds; negative values clamp to zero).
    pub fn record(&mut self, value_ms: f64) {
        let v = if value_ms.is_finite() {
            value_ms.max(0.0)
        } else {
            0.0
        };
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), within one bucket's relative
    /// error; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_value(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`, bucket by bucket.
    ///
    /// Because both histograms share the same fixed log-bucket layout,
    /// merging partial histograms is *exact* for everything derived from
    /// buckets and extremes: `count`, `max`, `min`, and every
    /// [`Histogram::quantile`] equal what recording the union of values
    /// into one histogram would produce. Only `mean` can drift by f64
    /// summation order (a few ULPs), never by bucketing. This is what
    /// lets a 10k-run sweep keep one bounded-size aggregate instead of
    /// retaining per-run reports.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        // min/max sentinels (±∞ when empty) make empty merges identity.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total of all recorded values (0 when empty).
    pub fn sum(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The occupied buckets as `(index, count)` pairs, in index order —
    /// the sparse form checkpoint files persist a histogram as.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| (index, n))
    }

    /// Rebuilds a histogram from its persisted sparse form
    /// ([`Histogram::nonzero_buckets`] plus [`Histogram::sum`],
    /// [`Histogram::min`], [`Histogram::max`]). Out-of-range bucket
    /// indices clamp into the top bucket; an empty reconstruction is
    /// [`Histogram::new`]. Round-trips exactly: restoring and then
    /// [`Histogram::merge`]-ing behaves as if the original had been
    /// merged.
    pub fn from_sparse(sparse: &[(usize, u64)], sum: f64, min: f64, max: f64) -> Histogram {
        let mut hist = Histogram::new();
        for &(index, n) in sparse {
            hist.buckets[index.min(BUCKETS - 1)] += n;
            hist.count += n;
        }
        if hist.count > 0 {
            hist.sum = sum;
            hist.min = min;
            hist.max = max;
        }
        hist
    }

    /// The p50/p95/p99 summary of this histogram.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50_ms: self.quantile(0.50),
            p95_ms: self.quantile(0.95),
            p99_ms: self.quantile(0.99),
            max_ms: self.max(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Percentile summary of one latency population, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Exact maximum.
    pub max_ms: f64,
}

impl LatencySummary {
    /// The all-zero summary of an empty population.
    pub const EMPTY: LatencySummary = LatencySummary {
        count: 0,
        p50_ms: 0.0,
        p95_ms: 0.0,
        p99_ms: 0.0,
        max_ms: 0.0,
    };
}

/// Named histograms + counters, with deterministic iteration order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    histograms: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value_ms` into the histogram named `name`.
    pub fn record_ms(&mut self, name: &str, value_ms: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value_ms);
    }

    /// Adds `by` to the counter named `name`.
    pub fn inc_by(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Increments the counter named `name`.
    pub fn inc(&mut self, name: &str) {
        self.inc_by(name, 1);
    }

    /// The histogram named `name`, if any value was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The counter named `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Builds the registry a trace implies: per-stage span-duration
    /// histograms (`stage.<name>`), per-event-type frame-latency
    /// histograms (`frame.<event>` plus the aggregate `frame.latency`),
    /// and one counter per event kind (`count.<name>`, with switches
    /// split by kind and faults by category).
    pub fn from_trace(buffer: &TraceBuffer) -> Self {
        let mut registry = MetricsRegistry::new();
        for record in &buffer.events {
            registry.inc(&format!("count.{}", record.kind.name()));
            match &record.kind {
                EventKind::Span { kind, dur, .. } => {
                    registry.record_ms(&format!("stage.{}", kind.name()), dur.as_millis_f64());
                }
                EventKind::FrameCommit { latency, event, .. } => {
                    registry.record_ms("frame.latency", latency.as_millis_f64());
                    registry.record_ms(&format!("frame.{event}"), latency.as_millis_f64());
                }
                EventKind::ConfigSwitch { from, to, .. } => {
                    let kind = if from.core == to.core {
                        "dvfs"
                    } else {
                        "migration"
                    };
                    registry.inc(&format!("switch.{kind}"));
                }
                EventKind::Fault { category, .. } => {
                    registry.inc(&format!("fault.{category}"));
                }
                EventKind::StyleStats {
                    resolves,
                    matches,
                    matches_id,
                    matches_class,
                    matches_tag,
                    matches_universal,
                    bloom_rejects,
                    cache_hits,
                    cache_misses,
                    cache_invalidations_avoided,
                } => {
                    registry.inc_by("style.resolves", *resolves);
                    registry.inc_by("style.matches", *matches);
                    registry.inc_by("style.matches_id", *matches_id);
                    registry.inc_by("style.matches_class", *matches_class);
                    registry.inc_by("style.matches_tag", *matches_tag);
                    registry.inc_by("style.matches_universal", *matches_universal);
                    registry.inc_by("style.bloom_rejects", *bloom_rejects);
                    registry.inc_by("style.cache_hits", *cache_hits);
                    registry.inc_by("style.cache_misses", *cache_misses);
                    registry.inc_by(
                        "style.cache_invalidations_avoided",
                        *cache_invalidations_avoided,
                    );
                }
                EventKind::RenderStats {
                    relayouts,
                    elements_laid_out,
                    subtree_reuses,
                    dirty_elements,
                    full_repaints,
                    partial_repaints,
                    items_emitted,
                    items_reused,
                    damage_items,
                    damage_area,
                } => {
                    registry.inc_by("layout.relayouts", *relayouts);
                    registry.inc_by("layout.elements_laid_out", *elements_laid_out);
                    registry.inc_by("layout.subtree_reuses", *subtree_reuses);
                    registry.inc_by("layout.dirty_elements", *dirty_elements);
                    registry.inc_by("paint.full_repaints", *full_repaints);
                    registry.inc_by("paint.partial_repaints", *partial_repaints);
                    registry.inc_by("paint.items_emitted", *items_emitted);
                    registry.inc_by("paint.items_reused", *items_reused);
                    registry.inc_by("paint.damage_items", *damage_items);
                    registry.inc_by("paint.damage_area", *damage_area);
                }
                _ => {}
            }
        }
        registry
    }

    /// Folds another registry into this one: histograms merge bucket-wise
    /// ([`Histogram::merge`]), counters add. Names absent on either side
    /// behave as empty/zero.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
        for (name, &count) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += count;
        }
    }

    /// Percentile summary for the span durations of `kind`.
    pub fn stage_summary(&self, kind: SpanKind) -> LatencySummary {
        self.histogram(&format!("stage.{}", kind.name()))
            .map_or(LatencySummary::EMPTY, Histogram::summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 10.0); // 0.1 .. 100.0 ms uniform
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 - 50.0).abs() / 50.0 < 0.10, "p50 {p50}");
        assert!((p99 - 99.0).abs() / 99.0 < 0.10, "p99 {p99}");
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 50.05).abs() < 1e-9);
        assert_eq!(h.max(), 100.0);
    }

    /// `mean` is exact arithmetic over the recorded values — unlike
    /// quantiles it carries no bucketing error, so we pin it against the
    /// exact expected value, not a tolerance band.
    #[test]
    fn mean_is_exact_over_recorded_values() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        h.record(2.0);
        h.record(4.0);
        h.record(6.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 4.0);
        // Merging parts reproduces the same exact mean: (2+4+6+8)/4.
        let mut part = Histogram::new();
        part.record(8.0);
        h.merge(&part);
        assert_eq!(h.mean(), 5.0);
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let mut h = Histogram::new();
        h.record(3.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.0);
        }
        assert_eq!(h.summary().p95_ms, 3.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), LatencySummary::EMPTY);
    }

    #[test]
    fn tiny_and_pathological_values_survive() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(1e12);
        assert_eq!(h.count(), 4);
        assert!(h.quantile(0.5) >= 0.0);
    }

    #[test]
    fn merge_of_parts_equals_record_of_whole() {
        let values: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.731).sin().abs() * 80.0)
            .collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut merged = Histogram::new();
        for chunk in values.chunks(37) {
            let mut part = Histogram::new();
            for &v in chunk {
                part.record(v);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.max(), whole.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "q={q}");
        }
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = Histogram::new();
        h.record(3.0);
        h.record(9.0);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty.summary(), before.summary());
    }

    #[test]
    fn registry_merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.inc_by("jobs", 2);
        a.record_ms("lat", 5.0);
        let mut b = MetricsRegistry::new();
        b.inc_by("jobs", 3);
        b.inc("only-b");
        b.record_ms("lat", 7.0);
        b.record_ms("other", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("jobs"), 5);
        assert_eq!(a.counter("only-b"), 1);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
    }

    #[test]
    fn registry_counts_and_orders() {
        let mut r = MetricsRegistry::new();
        r.inc("b");
        r.inc("a");
        r.inc("b");
        r.record_ms("lat", 5.0);
        assert_eq!(r.counter("b"), 2);
        assert_eq!(r.counter("missing"), 0);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
    }
}
