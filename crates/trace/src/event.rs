//! The typed event model: everything the simulator can put on a
//! timeline.

use greenweb_acmp::{CpuConfig, Duration, SimTime};

/// The six stages of the paper's frame lifetime (Fig. 7), each traced as
/// a span.
///
/// `Input` is the dispatch point of a user input, `Callback` the script
/// execution it triggers (including the modeled IPC leg), and the last
/// four are the rendering pipeline stages executed per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// Input dispatch (uid assignment + listener lookup).
    Input,
    /// An event/rAF/timer callback executing on the main thread.
    Callback,
    /// Style recalculation.
    Style,
    /// Layout.
    Layout,
    /// Paint.
    Paint,
    /// Composite — the frame commits when this span ends.
    Composite,
}

impl SpanKind {
    /// All six kinds, in frame-lifetime order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Input,
        SpanKind::Callback,
        SpanKind::Style,
        SpanKind::Layout,
        SpanKind::Paint,
        SpanKind::Composite,
    ];

    /// Stable lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Input => "input",
            SpanKind::Callback => "callback",
            SpanKind::Style => "style",
            SpanKind::Layout => "layout",
            SpanKind::Paint => "paint",
            SpanKind::Composite => "composite",
        }
    }
}

/// One typed trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed span of main-thread (or input-dispatch) work.
    Span {
        /// Which stage of the frame lifetime.
        kind: SpanKind,
        /// When the work started executing.
        start: SimTime,
        /// How long it ran (the record's own timestamp is the end).
        dur: Duration,
        /// The input uids attributed to this work (Fig. 8 metadata).
        uids: Vec<u64>,
        /// Optional annotation, e.g. the DOM event type name.
        label: Option<&'static str>,
        /// VM opcodes executed inside this span. Non-zero only for
        /// callback spans; the attribution profiler uses it to rank
        /// callbacks by script work, not just wall time.
        ops: u64,
    },
    /// A delivered VSync tick.
    Vsync,
    /// A scheduler decision: the per-frame "why" record.
    Decision {
        /// The QoS target in force, in milliseconds.
        target_ms: f64,
        /// The model's predicted latency at the chosen configuration;
        /// `None` while the class is still profiling.
        predicted_ms: Option<f64>,
        /// The configuration the scheduler asked for.
        chosen: CpuConfig,
        /// True while this is a profiling run, not a model prediction.
        profiling: bool,
    },
    /// The engine executed a configuration switch.
    ConfigSwitch {
        /// The configuration left.
        from: CpuConfig,
        /// The configuration entered.
        to: CpuConfig,
        /// The DVFS/migration stall charged to the running task.
        penalty: Duration,
    },
    /// A degradation-ladder transition (level names from
    /// `greenweb::degrade`).
    Ladder {
        /// The level left.
        from: &'static str,
        /// The level entered.
        to: &'static str,
    },
    /// An injected fault fired.
    Fault {
        /// Coarse category (`"load-spike"`, `"vsync"`, `"input"`,
        /// `"sensor"`).
        category: &'static str,
        /// Human-readable description of the specific fault.
        detail: String,
    },
    /// An energy-accounting sample, taken at display rate.
    EnergySample {
        /// Cumulative ground-truth energy, in millijoules.
        actual_mj: f64,
        /// Cumulative energy as the (possibly faulted) sensor reports
        /// it, in millijoules.
        metered_mj: f64,
        /// Instantaneous power draw at the sampled state, in milliwatts.
        power_mw: f64,
        /// The configuration at the sample point.
        config: CpuConfig,
        /// Whether the CPU was executing work.
        busy: bool,
    },
    /// End-of-run style-system counters: how much exact selector
    /// matching the bucketed resolver ran, what the ancestor Bloom
    /// filter rejected, and how the computed-style cache performed.
    /// Deterministic counters (never wall-clock), recorded once when the
    /// report is built.
    StyleStats {
        /// Bucketed style resolutions performed.
        resolves: u64,
        /// Exact selector match walks the bucketed path ran.
        matches: u64,
        /// Exact walks on candidates drawn from the id bucket. The four
        /// per-bucket counters partition `matches` and feed the
        /// attribution profiler's per-selector-bucket ranking.
        matches_id: u64,
        /// Exact walks on candidates drawn from a class bucket.
        matches_class: u64,
        /// Exact walks on candidates drawn from the tag bucket.
        matches_tag: u64,
        /// Exact walks on candidates drawn from the universal
        /// spill-over.
        matches_universal: u64,
        /// Candidates rejected by the ancestor Bloom filter alone.
        bloom_rejects: u64,
        /// Computed-style cache hits.
        cache_hits: u64,
        /// Computed-style cache misses.
        cache_misses: u64,
        /// Clear-alls downgraded to targeted invalidation because a
        /// static effect summary proved structure could not change.
        cache_invalidations_avoided: u64,
    },
    /// Deterministic render-pipeline counters (layout + paint), recorded
    /// once when the report is built, next to [`EventKind::StyleStats`].
    /// The dirty/damage numbers are identical whichever rendering mode
    /// (`GREENWEB_PAINT_INCR`) produced them; the laid-out/reuse split
    /// is where the modes differ.
    RenderStats {
        /// Frames laid out (one per produced frame).
        relayouts: u64,
        /// Elements actually measured across the run.
        elements_laid_out: u64,
        /// Clean subtrees served whole from the measure cache.
        subtree_reuses: u64,
        /// Elements whose subtree fingerprint changed (prices layout).
        dirty_elements: u64,
        /// Frames charged the full flat paint price.
        full_repaints: u64,
        /// Frames charged a partial (damaged-fraction) paint price.
        partial_repaints: u64,
        /// Display items (re)built.
        items_emitted: u64,
        /// Retained display items reused unchanged.
        items_reused: u64,
        /// Damaged items: changed + appeared + disappeared (prices
        /// paint).
        damage_items: u64,
        /// Damaged area, px².
        damage_area: u64,
    },
    /// A frame committed, answering one input (one per
    /// `FrameRecord`).
    FrameCommit {
        /// The originating input's uid.
        uid: u64,
        /// The frame's sequence number within the input's lifetime.
        seq: u32,
        /// The recorded frame latency.
        latency: Duration,
        /// The originating DOM event type name.
        event: &'static str,
    },
}

impl EventKind {
    /// Stable name of the event kind, used as counter keys and span
    /// names in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Span { kind, .. } => kind.name(),
            EventKind::Vsync => "vsync",
            EventKind::Decision { .. } => "decision",
            EventKind::ConfigSwitch { .. } => "config-switch",
            EventKind::Ladder { .. } => "ladder",
            EventKind::Fault { .. } => "fault",
            EventKind::EnergySample { .. } => "energy-sample",
            EventKind::StyleStats { .. } => "style-stats",
            EventKind::RenderStats { .. } => "render-stats",
            EventKind::FrameCommit { .. } => "frame-commit",
        }
    }
}

/// One recorded event: a timestamp, a deterministic tie-breaking
/// sequence number, and the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time the event was recorded (for spans: the end).
    pub at: SimTime,
    /// Monotonic insertion index — deterministic because the simulator
    /// is.
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}
