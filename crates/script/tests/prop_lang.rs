//! Property tests for the scripting language: totality of the frontend,
//! determinism of the interpreter, and structural invariants of the
//! evaluator.

use greenweb_det::prop::{check, DEFAULT_CASES};
use greenweb_script::{lex, parse_program, Interpreter, NoHost, Value};

/// The lexer is total: any string either lexes or errors, never
/// panics.
#[test]
fn lexer_never_panics() {
    check("lexer_never_panics", DEFAULT_CASES, |g| {
        let input = g.arbitrary_string(300);
        let _ = lex(&input);
    });
}

/// The parser is total over arbitrary input.
#[test]
fn parser_never_panics() {
    check("parser_never_panics", DEFAULT_CASES, |g| {
        let input = g.arbitrary_string(300);
        let _ = parse_program(&input);
    });
}

/// Number literals survive lex → parse → eval exactly.
#[test]
fn number_literals_round_trip() {
    check("number_literals_round_trip", DEFAULT_CASES, |g| {
        let n = g.f64_in(0.0, 1e12);
        let source = format!("var x = {n};");
        let program = parse_program(&source).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&program, &mut NoHost).unwrap();
        assert_eq!(interp.global("x"), Some(Value::Number(n)));
    });
}

/// String literals with arbitrary safe contents round-trip.
#[test]
fn string_literals_round_trip() {
    const SAFE: [char; 15] = [
        'a', 'Z', 'q', 'M', '0', '9', ' ', '_', '.', ',', '!', '?', '-', 'x', 'B',
    ];
    check("string_literals_round_trip", DEFAULT_CASES, |g| {
        let s = g.string_from(&SAFE, 40);
        let source = format!("var x = \"{s}\";");
        let program = parse_program(&source).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&program, &mut NoHost).unwrap();
        let value = interp.global("x").unwrap();
        assert_eq!(value.as_str(), Some(s.as_str()));
    });
}

/// Execution is deterministic: the same program leaves identical
/// globals and op counts on independent interpreters.
#[test]
fn interpretation_is_deterministic() {
    check("interpretation_is_deterministic", DEFAULT_CASES, |g| {
        let seed = g.usize_in(0, 1_000);
        let loops = g.usize_in(1, 50);
        let source = format!(
            "var acc = {seed};
             var i = 0;
             for (i = 0; i < {loops}; i = i + 1) {{
                 acc = (acc * 31 + i) % 65521;
             }}"
        );
        let program = parse_program(&source).unwrap();
        let mut a = Interpreter::new();
        a.run(&program, &mut NoHost).unwrap();
        let mut b = Interpreter::new();
        b.run(&program, &mut NoHost).unwrap();
        assert_eq!(a.global("acc"), b.global("acc"));
        assert_eq!(a.ops(), b.ops());
    });
}

/// Op count grows monotonically with loop trip count — the property
/// the engine's cost model depends on.
#[test]
fn op_count_monotone_in_work() {
    check("op_count_monotone_in_work", 32, |g| {
        let n = g.usize_in(1, 200) as u32;
        let run = |count: u32| {
            let source = format!(
                "var s = 0; var i = 0; for (i = 0; i < {count}; i = i + 1) {{ s = s + i; }}"
            );
            let program = parse_program(&source).unwrap();
            let mut interp = Interpreter::new();
            interp.run(&program, &mut NoHost).unwrap();
            interp.ops()
        };
        assert!(run(n + 1) > run(n));
    });
}

/// Array push/length agree for arbitrary element counts.
#[test]
fn array_length_tracks_pushes() {
    check("array_length_tracks_pushes", 32, |g| {
        let count = g.usize_in(0, 64);
        let source = format!(
            "var a = [];
             var i = 0;
             for (i = 0; i < {count}; i = i + 1) {{ a.push(i * 2); }}
             var len = a.length;
             var last = len > 0 ? a[len - 1] : null;"
        );
        let program = parse_program(&source).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&program, &mut NoHost).unwrap();
        assert_eq!(interp.global("len"), Some(Value::Number(count as f64)));
        if count > 0 {
            assert_eq!(
                interp.global("last"),
                Some(Value::Number((count as f64 - 1.0) * 2.0))
            );
        }
    });
}

/// Comparison operators form a total order consistent with f64.
#[test]
fn comparisons_match_f64() {
    check("comparisons_match_f64", DEFAULT_CASES, |g| {
        let a = g.f64_in(-1e6, 1e6);
        let b = g.f64_in(-1e6, 1e6);
        let source = format!(
            "var lt = {a} < {b}; var le = {a} <= {b}; var gt = {a} > {b};
             var ge = {a} >= {b}; var eq = {a} == {b};"
        );
        let program = parse_program(&source).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&program, &mut NoHost).unwrap();
        assert_eq!(interp.global("lt"), Some(Value::Bool(a < b)));
        assert_eq!(interp.global("le"), Some(Value::Bool(a <= b)));
        assert_eq!(interp.global("gt"), Some(Value::Bool(a > b)));
        assert_eq!(interp.global("ge"), Some(Value::Bool(a >= b)));
        assert_eq!(interp.global("eq"), Some(Value::Bool(a == b)));
    });
}
