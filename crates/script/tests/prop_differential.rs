//! Differential testing of the two language backends: every generated
//! program must produce identical observable results in the tree-walking
//! interpreter and the bytecode VM.

use greenweb_det::prop::{check, Gen, DEFAULT_CASES};
use greenweb_script::{parse_program, Interpreter, NoHost, Value, Vm};

/// Runs `source` on both backends and returns the values of `globals`
/// from each. Also enforces the tick-parity contract: on success the
/// VM's charged ops equal the interpreter's op count *exactly* (the
/// engine's cost model depends on this being backend-independent).
fn run_both(source: &str, globals: &[&str]) -> (Vec<Option<Value>>, Vec<Option<Value>>) {
    let program = parse_program(source).unwrap_or_else(|e| panic!("{e}\n{source}"));
    let mut interp = Interpreter::new();
    interp
        .run(&program, &mut NoHost)
        .unwrap_or_else(|e| panic!("interp: {e}\n{source}"));
    let mut vm = Vm::new();
    vm.run_source(source, &mut NoHost)
        .unwrap_or_else(|e| panic!("vm: {e}\n{source}"));
    assert_eq!(
        vm.ops(),
        interp.ops(),
        "charged ops diverge from the oracle on:\n{source}"
    );
    let a = globals.iter().map(|g| interp.global(g)).collect();
    let b = globals.iter().map(|g| vm.global(g)).collect();
    (a, b)
}

/// Deep comparison through `Display` (arrays/objects compare by identity
/// in `PartialEq`, so render them instead).
fn assert_same(source: &str, a: &[Option<Value>], b: &[Option<Value>]) {
    for (x, y) in a.iter().zip(b) {
        let xs = x.as_ref().map(std::string::ToString::to_string);
        let ys = y.as_ref().map(std::string::ToString::to_string);
        assert_eq!(xs, ys, "backends diverge on:\n{source}");
    }
}

/// Recursively generate an arithmetic/conditional expression over the
/// variables `v0`/`v1`.
fn gen_numeric_expr(g: &mut Gen, depth: u32) -> String {
    if depth == 0 || g.bool_with(0.3) {
        return match g.usize_in(0, 3) {
            0 => {
                let n = g.usize_in(0, 100) as i32 - 50;
                if n < 0 {
                    format!("({n})")
                } else {
                    n.to_string()
                }
            }
            1 => "v0".to_string(),
            _ => "v1".to_string(),
        };
    }
    if g.bool_with(0.75) {
        let a = gen_numeric_expr(g, depth - 1);
        let b = gen_numeric_expr(g, depth - 1);
        let symbol = *g.choose(&["+", "-", "*", "%", "/"]);
        format!("({a} {symbol} {b})")
    } else {
        let c = gen_numeric_expr(g, depth - 1);
        let t = gen_numeric_expr(g, depth - 1);
        let e = gen_numeric_expr(g, depth - 1);
        format!("(({c}) > 0 ? ({t}) : ({e}))")
    }
}

/// Arbitrary arithmetic/conditional expressions agree.
#[test]
fn expressions_agree() {
    check("expressions_agree", DEFAULT_CASES, |g| {
        let expr = gen_numeric_expr(g, 3);
        let v0 = g.usize_in(0, 40) as i32 - 20;
        let v1 = g.usize_in(1, 20);
        let source = format!("var v0 = {v0}; var v1 = {v1}; var result = {expr};");
        let (a, b) = run_both(&source, &["result"]);
        assert_same(&source, &a, &b);
    });
}

/// Loop programs agree (for/while, break/continue, accumulators).
#[test]
fn loops_agree() {
    check("loops_agree", DEFAULT_CASES, |g| {
        let n = g.usize_in(1, 40);
        let step = g.usize_in(1, 5);
        let cutoff = g.usize_in(0, 40);
        let source = format!(
            "var total = 0;
             var hits = 0;
             for (var i = 0; i < {n}; i += {step}) {{
                 if (i == {cutoff}) {{ break; }}
                 if (i % 3 == 0) {{ continue; }}
                 total += i;
                 hits += 1;
             }}
             var j = 0;
             var w = 0;
             while (j < {n}) {{ w += j * 2; j += {step}; }}"
        );
        let (a, b) = run_both(&source, &["total", "hits", "w"]);
        assert_same(&source, &a, &b);
    });
}

/// Function/closure programs agree, including captured state.
#[test]
fn closures_agree() {
    check("closures_agree", DEFAULT_CASES, |g| {
        let seed = g.usize_in(0, 100);
        let calls = g.usize_in(1, 8);
        let invocations: String = (0..calls).map(|_| "acc(); ".to_string()).collect();
        let source = format!(
            "function mk(start) {{
                 var n = start;
                 return function() {{ n = n + 3; return n; }};
             }}
             var acc = mk({seed});
             {invocations}
             var out = acc();"
        );
        let (a, b) = run_both(&source, &["out"]);
        assert_same(&source, &a, &b);
    });
}

/// Array/object/string manipulation agrees (rendered deeply).
#[test]
fn collections_agree() {
    check("collections_agree", DEFAULT_CASES, |g| {
        let items = g.vec_of(12, |g| g.usize_in(0, 60) as i32 - 30);
        let key: String = {
            let len = g.usize_in(1, 6);
            (0..len)
                .map(|_| (b'a' + g.usize_in(0, 26) as u8) as char)
                .collect()
        };
        let pushes: String = items.iter().map(|i| format!("a.push({i}); ")).collect();
        let source = format!(
            "var a = [];
             {pushes}
             var o = {{ {key}: a.length }};
             o.total = 0;
             var i = 0;
             for (i = 0; i < a.length; i += 1) {{ o.total += a[i]; }}
             var joined = a.join('-');
             var idx = a.indexOf({first});
             var shout = ('n=' + a.length).toUpperCase();",
            first = items.first().copied().unwrap_or(99),
        );
        let (a, b) = run_both(&source, &["a", "o", "joined", "idx", "shout"]);
        assert_same(&source, &a, &b);
    });
}

/// Math builtins agree, including the deterministic random sequence.
#[test]
fn math_agrees() {
    check("math_agrees", DEFAULT_CASES, |g| {
        let x = g.f64_in(-100.0, 100.0);
        let y = g.f64_in(1.0, 10.0);
        let source = format!(
            "var f = Math.floor({x});
             var c = Math.ceil({x});
             var p = Math.pow({y}, 2);
             var m = Math.min({x}, {y}) + Math.max({x}, {y});
             var r1 = Math.random();
             var r2 = Math.random();"
        );
        let (a, b) = run_both(&source, &["f", "c", "p", "m", "r1", "r2"]);
        assert_same(&source, &a, &b);
    });
}

/// Op counts of both backends are *identical* on successful runs: the
/// VM charges per-instruction tick weights that sum to exactly what the
/// tree-walker ticks, so `RunBudget` and the cost model mean the same
/// thing on either backend.
#[test]
fn op_counts_match_exactly() {
    check("op_counts_match_exactly", 32, |g| {
        let n = g.usize_in(10, 200);
        let source = format!("var s = 0; for (var i = 0; i < {n}; i += 1) {{ s += i; }}");
        let program = parse_program(&source).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&program, &mut NoHost).unwrap();
        let mut vm = Vm::new();
        vm.run_source(&source, &mut NoHost).unwrap();
        assert_eq!(vm.ops(), interp.ops(), "ops diverge on:\n{source}");
    });
}

/// Runtime errors agree: same message (including source line), same
/// typed-ness. Fuel exhaustion agrees in *class* on both backends under
/// the same ceiling.
#[test]
fn errors_agree() {
    check("errors_agree", 48, |g| {
        let line_pad = "\n".repeat(g.usize_in(0, 5));
        let kind = g.usize_in(0, 3);
        let source = match kind {
            0 => format!("var x = 1;{line_pad}missing(x);"),
            1 => format!("var o = {{ a: 1 }};{line_pad}var y = o.nope();"),
            _ => format!("var x = 1;{line_pad}x = x + undefined_thing;"),
        };
        let program = parse_program(&source).unwrap();
        let mut interp = Interpreter::new();
        let interp_err = interp.run(&program, &mut NoHost).unwrap_err();
        let mut vm = Vm::new();
        let vm_err = vm.run_source(&source, &mut NoHost).unwrap_err();
        assert_eq!(
            vm_err.to_string(),
            interp_err.to_string(),
            "error messages diverge on:\n{source}"
        );
        assert_eq!(vm_err.is_op_limit(), interp_err.is_op_limit());
    });
}

/// Fuel exhaustion is the same typed class on both backends under the
/// same ceiling.
#[test]
fn op_limit_class_agrees() {
    check("op_limit_class_agrees", 16, |g| {
        let limit = g.usize_in(50, 2_000) as u64;
        let source = "var i = 0; while (true) { i = i + 1; }";
        let program = parse_program(source).unwrap();
        let mut interp = Interpreter::new().with_op_limit(limit);
        let interp_err = interp.run(&program, &mut NoHost).unwrap_err();
        let mut vm = Vm::new().with_op_limit(limit);
        let vm_err = vm.run_source(source, &mut NoHost).unwrap_err();
        assert!(interp_err.is_op_limit());
        assert!(vm_err.is_op_limit());
        assert_eq!(vm_err.to_string(), interp_err.to_string());
    });
}

#[test]
fn string_semantics_agree() {
    let source = "
        var s = 'Hello World';
        var up = s.toUpperCase();
        var low = s.toLowerCase();
        var at = s.charCodeAt(1);
        var sub = s.substring(2, 7);
        var found = s.indexOf('World');
        var concat = s + '!' + 42 + true;
    ";
    let (a, b) = run_both(source, &["up", "low", "at", "sub", "found", "concat"]);
    assert_same(source, &a, &b);
}

#[test]
fn short_circuit_side_effects_agree() {
    let source = "
        var calls = 0;
        function bump() { calls = calls + 1; return true; }
        var a = false && bump();
        var b = true || bump();
        var c = true && bump();
        var d = false || bump();
    ";
    let (a, b) = run_both(source, &["calls", "a", "b", "c", "d"]);
    assert_same(source, &a, &b);
}

#[test]
fn higher_order_functions_agree() {
    let source = "
        function apply(f, x) { return f(x); }
        function compose(f, g) { return function(x) { return f(g(x)); }; }
        function inc(x) { return x + 1; }
        function dbl(x) { return x * 2; }
        var h = compose(inc, dbl);
        var r1 = apply(h, 10);
        var r2 = apply(compose(dbl, inc), 10);
    ";
    let (a, b) = run_both(source, &["r1", "r2"]);
    assert_same(source, &a, &b);
}

#[test]
fn object_methods_agree() {
    let source = "
        var counter = {
            n: 0,
            tick: function() { return 1; }
        };
        var t = counter.tick();
        counter.n = counter.n + t;
        var n = counter.n;
    ";
    let (a, b) = run_both(source, &["t", "n"]);
    assert_same(source, &a, &b);
}
