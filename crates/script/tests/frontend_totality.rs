//! Totality of the script front end and the bytecode VM on hostile
//! input, driven by the deterministic property harness.
//!
//! The static analyzer (`greenweb-analyze`) feeds arbitrary application
//! scripts through lexer → parser → compiler and then walks (or runs)
//! the resulting bytecode, so none of those stages may panic — every
//! malformed input must surface as a typed error.

use greenweb_det::prop;
use greenweb_script::compiler::{Const, Op, Proto};
use greenweb_script::{compile, parse_program, BinaryOp, CompiledProgram, NoHost, UnaryOp, Vm};
use std::sync::Arc;

/// Arbitrary character soup never panics the lexer/parser/compiler.
#[test]
fn arbitrary_source_never_panics_front_end() {
    prop::check("script-arbitrary-source-total", 192, |g| {
        let source = g.arbitrary_string(160);
        if let Ok(program) = parse_program(&source) {
            let _ = compile(&program);
        }
    });
}

/// Random streams of *valid tokens* (which reach much deeper into the
/// parser than character soup) never panic the chain either, and any
/// program that parses also compiles and runs without panicking.
#[test]
fn random_token_streams_never_panic() {
    const VOCAB: &[&str] = &[
        "var", "let", "function", "if", "else", "while", "for", "return", "break", "continue",
        "true", "false", "null", "x", "y", "work", "Math", "f", "(", ")", "{", "}", "[", "]", ";",
        ",", ".", "=", "==", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "&&", "||", "!",
        "?", ":", "+=", "-=", "++", "--", "0", "1", "42", "3.5", "'s'", "\"t\"",
    ];
    prop::check("script-token-stream-total", 192, |g| {
        let tokens = g.vec_of(60, |g| *g.choose(VOCAB));
        let source = tokens.join(" ");
        if let Ok(program) = parse_program(&source) {
            if let Ok(compiled) = compile(&program) {
                // A tight op budget keeps accidental loops cheap; any
                // outcome but a panic is acceptable.
                let mut vm = Vm::new().with_op_limit(10_000);
                let _ = vm.run(&compiled, &mut NoHost);
            }
        }
    });
}

/// Entirely random bytecode — operands pointing anywhere — executes to
/// a result or a typed error, never a panic (the analyzer's guarantee
/// for hostile compiled programs).
#[test]
fn random_bytecode_never_panics_vm() {
    prop::check("vm-hostile-bytecode-total", 192, |g| {
        let consts = vec![Const::Null, Const::Number(7.0), Const::Str("s".into())];
        let names = vec!["a".to_string(), "work".to_string()];
        let code = g.vec_of(40, |g| {
            let idx = g.usize_in(0, 9) as u32;
            let argc = g.usize_in(0, 4) as u8;
            let binop = *g.choose(&[
                BinaryOp::Add,
                BinaryOp::Div,
                BinaryOp::Lt,
                BinaryOp::And,
                BinaryOp::Or,
            ]);
            let unop = *g.choose(&[UnaryOp::Neg, UnaryOp::Not]);
            *g.choose(&[
                Op::Const(idx),
                Op::GetVar(idx),
                Op::SetVar(idx),
                Op::DeclVar(idx),
                Op::Pop,
                Op::Dup,
                Op::PushScope,
                Op::PopScope,
                // Including the short-circuit operators: the compiler
                // never emits Binary(And/Or), but hostile bytecode can,
                // and the VM must answer with a typed error.
                Op::Binary(binop),
                Op::Unary(unop),
                Op::Jump(idx),
                Op::JumpIfFalse(idx),
                Op::JumpIfFalsePeek(idx),
                Op::JumpIfTruePeek(idx),
                Op::MakeArray(argc as u16),
                Op::MakeObject {
                    base: idx,
                    count: argc as u16,
                },
                Op::MakeClosure(idx),
                Op::CallName { name: idx, argc },
                Op::CallValue { argc },
                Op::CallMethod { name: idx, argc },
                Op::CallMath { name: idx, argc },
                Op::GetMember(idx),
                Op::SetMember(idx),
                Op::GetIndex,
                Op::SetIndex,
                Op::Return,
            ])
        });
        // No spans/ticks/atoms tables: the VM must tolerate their
        // absence (weight-1 charging, on-the-fly name hashing).
        let proto = Proto {
            code,
            consts: consts.clone(),
            names: names.clone(),
            ..Proto::default()
        };
        let program = CompiledProgram {
            protos: Arc::new(vec![proto]),
            main: 0,
        };
        let mut vm = Vm::new().with_op_limit(5_000);
        let _ = vm.run(&program, &mut NoHost);
    });
}
