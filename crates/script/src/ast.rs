//! Abstract syntax tree for the GreenWeb scripting language.

use std::fmt;
use std::rc::Rc;

/// A complete program: a list of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements in source order.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var x = e;` / `let x = e;` (both create a binding in the current
    /// scope; the language is block-scoped throughout for simplicity).
    VarDecl {
        /// Variable name.
        name: String,
        /// Optional initializer; `null` when absent.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `function name(params) { body }`
    FunctionDecl {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body statements, shared so closures stay cheap to clone.
        body: Rc<Vec<Stmt>>,
        /// Source line.
        line: u32,
    },
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `if (cond) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_branch: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; update) { … }`
    For {
        /// Optional initializer statement.
        init: Option<Box<Stmt>>,
        /// Optional condition (true when absent).
        cond: Option<Expr>,
        /// Optional update expression.
        update: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return e;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ … }` block with its own scope.
    Block(Vec<Stmt>),
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the operators are their own documentation
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let symbol = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "&&",
            BinaryOp::Or => "||",
        };
        f.write_str(symbol)
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A plain variable.
    Var(String),
    /// `obj.name`
    Member(Box<Expr>, String),
    /// `obj[index]`
    Index(Box<Expr>, Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Variable reference.
    Var(String),
    /// `[a, b, c]`
    Array(Vec<Expr>),
    /// `{ key: value, … }`
    Object(Vec<(String, Expr)>),
    /// Anonymous `function (params) { body }`.
    Function {
        /// Parameter names.
        params: Vec<String>,
        /// Body statements.
        body: Rc<Vec<Stmt>>,
    },
    /// `target = value` (also compound `+=` etc., desugared by the parser).
    Assign {
        /// Where to store.
        target: Target,
        /// What to store.
        value: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `cond ? a : b`
    Conditional {
        /// Condition.
        cond: Box<Expr>,
        /// Value when truthy.
        then_value: Box<Expr>,
        /// Value when falsy.
        else_value: Box<Expr>,
    },
    /// `callee(args)` — `callee` may be a variable (host or script
    /// function) or any expression evaluating to a function.
    Call {
        /// The called expression.
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source line, for runtime error messages.
        line: u32,
    },
    /// `obj.name`
    Member {
        /// The object expression.
        object: Box<Expr>,
        /// The property name.
        property: String,
    },
    /// `obj[index]`
    Index {
        /// The object expression.
        object: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_op_display() {
        assert_eq!(BinaryOp::Add.to_string(), "+");
        assert_eq!(BinaryOp::Le.to_string(), "<=");
        assert_eq!(BinaryOp::And.to_string(), "&&");
    }

    #[test]
    fn expr_var_helper() {
        assert_eq!(Expr::var("x"), Expr::Var("x".into()));
    }
}
