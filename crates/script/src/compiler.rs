//! Bytecode compiler: lowers the AST to a stack-machine instruction set
//! executed by [`crate::vm::Vm`].
//!
//! The compiler is the second backend of the language (the first is the
//! tree-walking [`crate::Interpreter`]); both implement identical
//! semantics, which the differential test suite enforces. Each function
//! body compiles to its own [`Proto`]; closures pair a proto index with
//! the lexical environment captured at `MakeClosure` time.

use crate::ast::{BinaryOp, Expr, Program, Stmt, Target, UnaryOp};
use std::fmt;
use std::rc::Rc;

/// A constant-pool entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(f64),
    /// A string.
    Str(String),
}

/// One bytecode instruction.
///
/// Jump targets are absolute instruction indices within the proto;
/// `name` fields index the proto's name table and `argc` counts stacked
/// arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // operand fields documented on the enum
pub enum Op {
    /// Push constant `consts[idx]`.
    Const(u32),
    /// Push the value of variable `names[idx]` (scope-chain lookup).
    GetVar(u32),
    /// Pop and assign to existing variable `names[idx]`.
    SetVar(u32),
    /// Pop and declare `names[idx]` in the current scope.
    DeclVar(u32),
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Enter a new lexical scope.
    PushScope,
    /// Leave the innermost lexical scope.
    PopScope,
    /// Binary operator on the top two values (lhs below rhs).
    Binary(BinaryOp),
    /// Unary operator on the top value.
    Unary(UnaryOp),
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// Jump when the (unpopped) top of stack is falsy.
    JumpIfFalsePeek(u32),
    /// Jump when the (unpopped) top of stack is truthy.
    JumpIfTruePeek(u32),
    /// Push an array of the top `n` values (in push order).
    MakeArray(u16),
    /// Push an object from the top `n` (key-name, value) pairs; key names
    /// come from `names` starting at `base`.
    MakeObject { base: u32, count: u16 },
    /// Push a closure over proto `idx`, capturing the current scope.
    MakeClosure(u32),
    /// Call `names[idx]` with `argc` stacked arguments: a script function
    /// from the scope chain, else a host function.
    CallName { name: u32, argc: u8 },
    /// Call the value below the `argc` arguments.
    CallValue { argc: u8 },
    /// Call method `names[idx]` on the object below `argc` arguments
    /// (array/string builtins or a function-valued object member).
    CallMethod { name: u32, argc: u8 },
    /// Call `Math.names[idx]` with `argc` arguments.
    CallMath { name: u32, argc: u8 },
    /// Push `object.names[idx]` (object popped).
    GetMember(u32),
    /// Pop value and object; store `object.names[idx] = value`.
    SetMember(u32),
    /// Push `object[index]` (index and object popped).
    GetIndex,
    /// Pop value, index, object; store `object[index] = value`.
    SetIndex,
    /// Return the top of stack from the current function.
    Return,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A compiled function body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Proto {
    /// Function name (empty for anonymous functions and the main body).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Instructions.
    pub code: Vec<Op>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Interned names (variables, members, methods, object keys).
    pub names: Vec<String>,
}

/// A whole compiled program: the prototypes plus the index of the main
/// body.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// Every function prototype; `protos[main]` is the top level.
    pub protos: Rc<Vec<Proto>>,
    /// Index of the program body.
    pub main: usize,
}

/// Error raised during compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    message: String,
}

impl CompileError {
    fn new(message: impl Into<String>) -> Self {
        CompileError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles a parsed program to bytecode.
///
/// # Errors
///
/// Returns [`CompileError`] on constructs the bytecode backend rejects
/// (currently only `break`/`continue` outside a loop, which the parser
/// cannot rule out).
pub fn compile(program: &Program) -> Result<CompiledProgram, CompileError> {
    let mut protos: Vec<Proto> = Vec::new();
    let main = compile_function(String::new(), &[], &program.body, &mut protos)?;
    Ok(CompiledProgram {
        protos: Rc::new(protos),
        main,
    })
}

struct LoopCtx {
    /// Jump indices to patch to the loop end.
    breaks: Vec<usize>,
    /// Jump indices to patch to the loop's update/condition point.
    continues: Vec<usize>,
    /// Lexical scope depth at loop entry (for unwinding on break).
    scope_depth: usize,
}

struct FnCompiler<'p> {
    proto: Proto,
    protos: &'p mut Vec<Proto>,
    loops: Vec<LoopCtx>,
    scope_depth: usize,
}

fn compile_function(
    name: String,
    params: &[String],
    body: &[Stmt],
    protos: &mut Vec<Proto>,
) -> Result<usize, CompileError> {
    let mut fc = FnCompiler {
        proto: Proto {
            name,
            params: params.to_vec(),
            ..Proto::default()
        },
        protos,
        loops: Vec::new(),
        scope_depth: 0,
    };
    for stmt in body {
        fc.stmt(stmt)?;
    }
    // Implicit `return null`.
    let null = fc.konst(Const::Null);
    fc.emit(Op::Const(null));
    fc.emit(Op::Return);
    let index = fc.protos.len();
    let proto = fc.proto;
    protos.push(proto);
    Ok(index)
}

impl FnCompiler<'_> {
    fn emit(&mut self, op: Op) -> usize {
        self.proto.code.push(op);
        self.proto.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.proto.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        let op = &mut self.proto.code[at];
        *op = match *op {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfFalsePeek(_) => Op::JumpIfFalsePeek(target),
            Op::JumpIfTruePeek(_) => Op::JumpIfTruePeek(target),
            other => other,
        };
    }

    fn konst(&mut self, c: Const) -> u32 {
        if let Some(i) = self.proto.consts.iter().position(|x| x == &c) {
            return i as u32;
        }
        self.proto.consts.push(c);
        (self.proto.consts.len() - 1) as u32
    }

    fn name(&mut self, n: &str) -> u32 {
        if let Some(i) = self.proto.names.iter().position(|x| x == n) {
            return i as u32;
        }
        self.proto.names.push(n.to_string());
        (self.proto.names.len() - 1) as u32
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::VarDecl { name, init, .. } => {
                match init {
                    Some(expr) => self.expr(expr)?,
                    None => {
                        let null = self.konst(Const::Null);
                        self.emit(Op::Const(null));
                    }
                }
                let n = self.name(name);
                self.emit(Op::DeclVar(n));
            }
            Stmt::FunctionDecl {
                name, params, body, ..
            } => {
                let idx = compile_function(name.clone(), params, body, self.protos)?;
                self.emit(Op::MakeClosure(idx as u32));
                let n = self.name(name);
                self.emit(Op::DeclVar(n));
            }
            Stmt::Expr(expr) => {
                self.expr(expr)?;
                self.emit(Op::Pop);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond)?;
                let to_else = self.emit(Op::JumpIfFalse(0));
                self.block(then_branch)?;
                if else_branch.is_empty() {
                    let end = self.here();
                    self.patch(to_else, end);
                } else {
                    let to_end = self.emit(Op::Jump(0));
                    let else_at = self.here();
                    self.patch(to_else, else_at);
                    self.block(else_branch)?;
                    let end = self.here();
                    self.patch(to_end, end);
                }
            }
            Stmt::While { cond, body } => {
                let top = self.here();
                self.expr(cond)?;
                let exit = self.emit(Op::JumpIfFalse(0));
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                    scope_depth: self.scope_depth,
                });
                self.block(body)?;
                let ctx = self.loops.pop().expect("loop ctx pushed above");
                for at in ctx.continues {
                    self.patch(at, top);
                }
                self.emit(Op::Jump(top));
                let end = self.here();
                self.patch(exit, end);
                for at in ctx.breaks {
                    self.patch(at, end);
                }
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                // The loop gets its own scope so `for (var i …)` does not
                // leak, matching the interpreter.
                self.emit(Op::PushScope);
                self.scope_depth += 1;
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let top = self.here();
                let exit = match cond {
                    Some(cond) => {
                        self.expr(cond)?;
                        Some(self.emit(Op::JumpIfFalse(0)))
                    }
                    None => None,
                };
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                    scope_depth: self.scope_depth,
                });
                self.block(body)?;
                let ctx = self.loops.pop().expect("loop ctx pushed above");
                let update_at = self.here();
                for at in ctx.continues {
                    self.patch(at, update_at);
                }
                if let Some(update) = update {
                    self.expr(update)?;
                    self.emit(Op::Pop);
                }
                self.emit(Op::Jump(top));
                let end = self.here();
                if let Some(exit) = exit {
                    self.patch(exit, end);
                }
                for at in ctx.breaks {
                    self.patch(at, end);
                }
                self.emit(Op::PopScope);
                self.scope_depth -= 1;
            }
            Stmt::Return(value) => {
                match value {
                    Some(expr) => self.expr(expr)?,
                    None => {
                        let null = self.konst(Const::Null);
                        self.emit(Op::Const(null));
                    }
                }
                self.emit(Op::Return);
            }
            Stmt::Break => {
                let depth_now = self.scope_depth;
                let ctx_depth = self
                    .loops
                    .last()
                    .map(|c| c.scope_depth)
                    .ok_or_else(|| CompileError::new("`break` outside a loop"))?;
                for _ in ctx_depth..depth_now {
                    self.emit(Op::PopScope);
                }
                let at = self.emit(Op::Jump(0));
                self.loops
                    .last_mut()
                    .expect("checked above")
                    .breaks
                    .push(at);
            }
            Stmt::Continue => {
                let depth_now = self.scope_depth;
                let ctx_depth = self
                    .loops
                    .last()
                    .map(|c| c.scope_depth)
                    .ok_or_else(|| CompileError::new("`continue` outside a loop"))?;
                for _ in ctx_depth..depth_now {
                    self.emit(Op::PopScope);
                }
                let at = self.emit(Op::Jump(0));
                self.loops
                    .last_mut()
                    .expect("checked above")
                    .continues
                    .push(at);
            }
            Stmt::Block(body) => self.block(body)?,
        }
        Ok(())
    }

    fn block(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        self.emit(Op::PushScope);
        self.scope_depth += 1;
        for stmt in body {
            self.stmt(stmt)?;
        }
        self.emit(Op::PopScope);
        self.scope_depth -= 1;
        Ok(())
    }

    fn expr(&mut self, expr: &Expr) -> Result<(), CompileError> {
        match expr {
            Expr::Number(n) => {
                let c = self.konst(Const::Number(*n));
                self.emit(Op::Const(c));
            }
            Expr::Str(s) => {
                let c = self.konst(Const::Str(s.clone()));
                self.emit(Op::Const(c));
            }
            Expr::Bool(b) => {
                let c = self.konst(Const::Bool(*b));
                self.emit(Op::Const(c));
            }
            Expr::Null => {
                let c = self.konst(Const::Null);
                self.emit(Op::Const(c));
            }
            Expr::Var(name) => {
                let n = self.name(name);
                self.emit(Op::GetVar(n));
            }
            Expr::Array(items) => {
                for item in items {
                    self.expr(item)?;
                }
                self.emit(Op::MakeArray(items.len() as u16));
            }
            Expr::Object(entries) => {
                // Keys must be contiguous in the name table so the VM can
                // recover them from `base..base+count`.
                let base = self.proto.names.len() as u32;
                let keys: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
                for key in &keys {
                    self.proto.names.push(key.clone());
                }
                for (_, value) in entries {
                    self.expr(value)?;
                }
                self.emit(Op::MakeObject {
                    base,
                    count: entries.len() as u16,
                });
            }
            Expr::Function { params, body } => {
                let idx = compile_function(String::new(), params, body, self.protos)?;
                self.emit(Op::MakeClosure(idx as u32));
            }
            Expr::Assign { target, value } => {
                match target {
                    Target::Var(name) => {
                        self.expr(value)?;
                        self.emit(Op::Dup); // assignment is an expression
                        let n = self.name(name);
                        self.emit(Op::SetVar(n));
                    }
                    Target::Member(object, property) => {
                        self.expr(value)?;
                        self.emit(Op::Dup);
                        self.expr(object)?;
                        // Stack: value, value, object.
                        let n = self.name(property);
                        self.emit(Op::SetMember(n));
                    }
                    Target::Index(object, index) => {
                        self.expr(value)?;
                        self.emit(Op::Dup);
                        self.expr(object)?;
                        self.expr(index)?;
                        // Stack: value, value, object, index.
                        self.emit(Op::SetIndex);
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::And => {
                    self.expr(lhs)?;
                    let skip = self.emit(Op::JumpIfFalsePeek(0));
                    self.emit(Op::Pop);
                    self.expr(rhs)?;
                    let end = self.here();
                    self.patch(skip, end);
                }
                BinaryOp::Or => {
                    self.expr(lhs)?;
                    let skip = self.emit(Op::JumpIfTruePeek(0));
                    self.emit(Op::Pop);
                    self.expr(rhs)?;
                    let end = self.here();
                    self.patch(skip, end);
                }
                _ => {
                    self.expr(lhs)?;
                    self.expr(rhs)?;
                    self.emit(Op::Binary(*op));
                }
            },
            Expr::Unary { op, operand } => {
                self.expr(operand)?;
                self.emit(Op::Unary(*op));
            }
            Expr::Conditional {
                cond,
                then_value,
                else_value,
            } => {
                self.expr(cond)?;
                let to_else = self.emit(Op::JumpIfFalse(0));
                self.expr(then_value)?;
                let to_end = self.emit(Op::Jump(0));
                let else_at = self.here();
                self.patch(to_else, else_at);
                self.expr(else_value)?;
                let end = self.here();
                self.patch(to_end, end);
            }
            Expr::Call { callee, args, .. } => {
                // Math namespace (when not shadowed — the VM re-checks at
                // runtime like the interpreter does).
                if let Expr::Member { object, property } = &**callee {
                    if matches!(&**object, Expr::Var(ns) if ns == "Math") {
                        for arg in args {
                            self.expr(arg)?;
                        }
                        let n = self.name(property);
                        self.emit(Op::CallMath {
                            name: n,
                            argc: args.len() as u8,
                        });
                        return Ok(());
                    }
                    // Method call: object below the arguments.
                    self.expr(object)?;
                    for arg in args {
                        self.expr(arg)?;
                    }
                    let n = self.name(property);
                    self.emit(Op::CallMethod {
                        name: n,
                        argc: args.len() as u8,
                    });
                    return Ok(());
                }
                if let Expr::Var(name) = &**callee {
                    for arg in args {
                        self.expr(arg)?;
                    }
                    let n = self.name(name);
                    self.emit(Op::CallName {
                        name: n,
                        argc: args.len() as u8,
                    });
                    return Ok(());
                }
                self.expr(callee)?;
                for arg in args {
                    self.expr(arg)?;
                }
                self.emit(Op::CallValue {
                    argc: args.len() as u8,
                });
            }
            Expr::Member { object, property } => {
                self.expr(object)?;
                let n = self.name(property);
                self.emit(Op::GetMember(n));
            }
            Expr::Index { object, index } => {
                self.expr(object)?;
                self.expr(index)?;
                self.emit(Op::GetIndex);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile_src(src: &str) -> CompiledProgram {
        compile(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn compiles_literals_and_arith() {
        let p = compile_src("var x = 1 + 2 * 3;");
        let main = &p.protos[p.main];
        assert!(main.code.contains(&Op::Binary(BinaryOp::Add)));
        assert!(main.code.contains(&Op::Binary(BinaryOp::Mul)));
        assert!(main.consts.contains(&Const::Number(1.0)));
    }

    #[test]
    fn constant_pool_dedups() {
        let p = compile_src("var x = 5; var y = 5; var z = 5;");
        let main = &p.protos[p.main];
        let fives = main
            .consts
            .iter()
            .filter(|c| **c == Const::Number(5.0))
            .count();
        assert_eq!(fives, 1);
    }

    #[test]
    fn functions_get_own_protos() {
        let p = compile_src(
            "function f(a) { return a; }
             function g() { return f(1); }",
        );
        assert_eq!(p.protos.len(), 3); // f, g, main
        assert!(p.protos.iter().any(|proto| proto.name == "f"));
        assert!(p.protos.iter().any(|proto| proto.name == "g"));
    }

    #[test]
    fn jumps_are_patched_in_range() {
        let p = compile_src(
            "var x = 0;
             if (x < 1) { x = 1; } else { x = 2; }
             while (x < 10) { x = x + 1; if (x == 5) { break; } }
             for (var i = 0; i < 3; i++) { if (i == 1) { continue; } x += i; }",
        );
        for proto in p.protos.iter() {
            let len = proto.code.len() as u32;
            for op in &proto.code {
                let target = match op {
                    Op::Jump(t)
                    | Op::JumpIfFalse(t)
                    | Op::JumpIfFalsePeek(t)
                    | Op::JumpIfTruePeek(t) => Some(*t),
                    _ => None,
                };
                if let Some(t) = target {
                    assert!(t <= len, "jump target {t} out of range {len}");
                    assert!(t != 0 || len == 0, "unpatched jump");
                }
            }
        }
    }

    #[test]
    fn break_outside_loop_rejected() {
        let program = parse_program("break;").unwrap();
        assert!(compile(&program).is_err());
        let program = parse_program("continue;").unwrap();
        assert!(compile(&program).is_err());
    }

    #[test]
    fn math_calls_compile_to_callmath() {
        let p = compile_src("var x = Math.floor(1.5);");
        let main = &p.protos[p.main];
        assert!(main
            .code
            .iter()
            .any(|op| matches!(op, Op::CallMath { argc: 1, .. })));
    }

    #[test]
    fn object_literal_keys_are_contiguous() {
        let p = compile_src("var o = { a: 1, b: 2, c: 3 };");
        let main = &p.protos[p.main];
        let Some(Op::MakeObject { base, count }) = main
            .code
            .iter()
            .find(|op| matches!(op, Op::MakeObject { .. }))
        else {
            panic!("no MakeObject");
        };
        assert_eq!(*count, 3);
        let keys: Vec<&str> = (0..3)
            .map(|i| main.names[(*base + i) as usize].as_str())
            .collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }
}
