//! Bytecode compiler: lowers the AST to a stack-machine instruction set
//! executed by [`crate::vm::Vm`].
//!
//! The compiler is the second backend of the language (the first is the
//! tree-walking [`crate::Interpreter`]); both implement identical
//! semantics, which the differential test suite enforces. Each function
//! body compiles to its own [`Proto`]; closures pair a proto index with
//! the lexical environment captured at `MakeClosure` time.
//!
//! Three side tables ride along with every proto's `code`, one entry per
//! instruction:
//!
//! - **`spans`** — the source line each instruction came from, so VM
//!   runtime errors carry the same `(line N)` the interpreter reports
//!   and trace attribution can map hot instructions back to source.
//! - **`ticks`** — the instruction's fuel weight. The tree-walker
//!   charges one tick per *AST node visit*; the compiler distributes
//!   exactly those ticks over the emitted instructions (most carry 0 or
//!   1; a folded constant carries its whole collapsed subtree's count).
//!   Summed over an execution, `Vm::ops` therefore equals
//!   `Interpreter::ops` exactly, which keeps the engine's cost model,
//!   the `RunBudget` fuel ceiling, and `Span.ops` attribution
//!   backend-independent.
//! - **`name_atoms`** — FNV-1a atoms ([`crate::atom::name_atom`]) of the
//!   interned names, precomputed once so scope lookups at runtime hash
//!   no strings.
//!
//! The constant-folding pass ([`CompileOptions::fold`], on by default)
//! evaluates literal arithmetic/comparison/concatenation at compile time
//! and elides dead branches behind constant conditions. Folding never
//! changes observable semantics *or* charged ops — a folded `Const`
//! carries the collapsed subtree's tick weight — it only reduces the
//! number of dispatched instructions.

use crate::ast::{BinaryOp, Expr, Program, Stmt, Target, UnaryOp};
use crate::atom::name_atom;
use crate::builtins;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A constant-pool entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(f64),
    /// A string.
    Str(String),
}

impl Const {
    /// JS-style truthiness of a constant (matches [`Value::is_truthy`]).
    fn is_truthy(&self) -> bool {
        match self {
            Const::Null => false,
            Const::Bool(b) => *b,
            Const::Number(n) => *n != 0.0 && !n.is_nan(),
            Const::Str(s) => !s.is_empty(),
        }
    }

    /// The runtime value of this constant.
    fn to_value(&self) -> Value {
        match self {
            Const::Null => Value::Null,
            Const::Bool(b) => Value::Bool(*b),
            Const::Number(n) => Value::Number(*n),
            Const::Str(s) => Value::str(s),
        }
    }

    /// The constant form of a scalar value (`None` for reference types,
    /// which have identity and cannot live in the pool).
    fn from_value(value: &Value) -> Option<Const> {
        match value {
            Value::Null => Some(Const::Null),
            Value::Bool(b) => Some(Const::Bool(*b)),
            Value::Number(n) => Some(Const::Number(*n)),
            Value::Str(s) => Some(Const::Str(s.to_string())),
            _ => None,
        }
    }
}

/// One bytecode instruction.
///
/// Jump targets are absolute instruction indices within the proto;
/// `name` fields index the proto's name table and `argc` counts stacked
/// arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // operand fields documented on the enum
pub enum Op {
    /// Push constant `consts[idx]`.
    Const(u32),
    /// Push the value of variable `names[idx]` (scope-chain lookup).
    GetVar(u32),
    /// Pop and assign to existing variable `names[idx]`.
    SetVar(u32),
    /// Pop and declare `names[idx]` in the current scope.
    DeclVar(u32),
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Enter a new lexical scope.
    PushScope,
    /// Leave the innermost lexical scope.
    PopScope,
    /// Binary operator on the top two values (lhs below rhs).
    Binary(BinaryOp),
    /// Unary operator on the top value.
    Unary(UnaryOp),
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// Jump when the (unpopped) top of stack is falsy.
    JumpIfFalsePeek(u32),
    /// Jump when the (unpopped) top of stack is truthy.
    JumpIfTruePeek(u32),
    /// Push an array of the top `n` values (in push order).
    MakeArray(u16),
    /// Push an object from the top `n` (key-name, value) pairs; key names
    /// come from `names` starting at `base`.
    MakeObject { base: u32, count: u16 },
    /// Push a closure over proto `idx`, capturing the current scope.
    MakeClosure(u32),
    /// Call `names[idx]` with `argc` stacked arguments: a script function
    /// from the scope chain, else a host function.
    CallName { name: u32, argc: u8 },
    /// Call the value below the `argc` arguments.
    CallValue { argc: u8 },
    /// Call method `names[idx]` on the object below `argc` arguments
    /// (array/string builtins or a function-valued object member).
    CallMethod { name: u32, argc: u8 },
    /// Call `Math.names[idx]` with `argc` arguments.
    CallMath { name: u32, argc: u8 },
    /// Push `object.names[idx]` (object popped).
    GetMember(u32),
    /// Pop value and object; store `object.names[idx] = value`.
    SetMember(u32),
    /// Push `object[index]` (index and object popped).
    GetIndex,
    /// Pop value, index, object; store `object[index] = value`.
    SetIndex,
    /// Return the top of stack from the current function.
    Return,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A compiled function body.
///
/// `spans` and `ticks` are parallel to `code` (one entry per
/// instruction); `name_atoms` is parallel to `names` and `param_atoms`
/// to `params`. Hand-built protos may leave the side tables empty: the
/// VM falls back to weight 1 per instruction and hashes names on the
/// fly, so hostile bytecode stays executable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Proto {
    /// Function name (empty for anonymous functions and the main body).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Name atoms of the parameters (parallel to `params`).
    pub param_atoms: Vec<u64>,
    /// Instructions.
    pub code: Vec<Op>,
    /// Source line per instruction (parallel to `code`; 0 = unknown).
    pub spans: Vec<u32>,
    /// Fuel weight per instruction (parallel to `code`): interpreter
    /// ticks this instruction accounts for. Weights over an execution
    /// sum to exactly the tree-walker's op count for the same program.
    pub ticks: Vec<u32>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Interned names (variables, members, methods, object keys).
    pub names: Vec<String>,
    /// Name atoms of the interned names (parallel to `names`).
    pub name_atoms: Vec<u64>,
    /// Constant-folding wins: subtrees collapsed to a single constant
    /// plus branches elided behind constant conditions.
    pub folded: u32,
}

/// A whole compiled program: the prototypes plus the index of the main
/// body. The prototype table is atomically shared (`Arc`) so one
/// compiled artifact can be held by the app-owning engine
/// side across threads, executed by the VM, and analyzed statically —
/// all zero-copy.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// Every function prototype; `protos[main]` is the top level.
    pub protos: Arc<Vec<Proto>>,
    /// Index of the program body.
    pub main: usize,
}

/// Error raised during compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    message: String,
}

impl CompileError {
    fn new(message: impl Into<String>) -> Self {
        CompileError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiler knobs.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Run the constant-folding pass (default on). Disabled only by
    /// tests that compare folded against unfolded output.
    pub fold: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { fold: true }
    }
}

/// Compiles a parsed program to bytecode with default options
/// (constant folding on).
///
/// # Errors
///
/// Returns [`CompileError`] on constructs the bytecode backend rejects
/// (currently only `break`/`continue` outside a loop, which the parser
/// cannot rule out).
pub fn compile(program: &Program) -> Result<CompiledProgram, CompileError> {
    compile_with(program, CompileOptions::default())
}

/// Compiles with explicit [`CompileOptions`].
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with(
    program: &Program,
    options: CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let mut protos: Vec<Proto> = Vec::new();
    let main = compile_function(String::new(), &[], &program.body, &mut protos, options)?;
    Ok(CompiledProgram {
        protos: Arc::new(protos),
        main,
    })
}

struct LoopCtx {
    /// Jump indices to patch to the loop end.
    breaks: Vec<usize>,
    /// Jump indices to patch to the loop's update/condition point.
    continues: Vec<usize>,
    /// Lexical scope depth at loop entry (for unwinding on break).
    scope_depth: usize,
}

struct FnCompiler<'p> {
    proto: Proto,
    protos: &'p mut Vec<Proto>,
    loops: Vec<LoopCtx>,
    scope_depth: usize,
    options: CompileOptions,
    /// Current source line, stamped into `spans` at each emit.
    line: u32,
    /// Tick weight owed by a folded/elided subtree, attached to the next
    /// emitted instruction. Folding sites only ever leave pending weight
    /// immediately before emitting a once-per-arrival instruction (a
    /// branch's `PushScope`, the first op of a short-circuit rhs, the
    /// function's implicit return), never before a loop header that
    /// re-executes per iteration — that is what keeps folded and
    /// unfolded charge counts identical.
    pending: u32,
}

fn compile_function(
    name: String,
    params: &[String],
    body: &[Stmt],
    protos: &mut Vec<Proto>,
    options: CompileOptions,
) -> Result<usize, CompileError> {
    let mut fc = FnCompiler {
        proto: Proto {
            name,
            params: params.to_vec(),
            param_atoms: params.iter().map(|p| name_atom(p)).collect(),
            ..Proto::default()
        },
        protos,
        loops: Vec::new(),
        scope_depth: 0,
        options,
        line: 0,
        pending: 0,
    };
    for stmt in body {
        fc.stmt(stmt)?;
    }
    // Implicit `return null` (the tree-walker's fall-off return charges
    // nothing, so both carry weight 0 and only absorb pending fold debt).
    let null = fc.konst(Const::Null);
    fc.emit(Op::Const(null));
    fc.emit(Op::Return);
    debug_assert_eq!(fc.pending, 0, "fold debt must be attached by function end");
    let index = fc.protos.len();
    let proto = fc.proto;
    debug_assert_eq!(proto.code.len(), proto.spans.len());
    debug_assert_eq!(proto.code.len(), proto.ticks.len());
    debug_assert_eq!(proto.names.len(), proto.name_atoms.len());
    protos.push(proto);
    Ok(index)
}

impl FnCompiler<'_> {
    /// Emits `op` with fuel weight `weight`, absorbing any pending
    /// folded-subtree weight, and stamps the current source line.
    fn emit_w(&mut self, op: Op, weight: u32) -> usize {
        self.proto.code.push(op);
        self.proto.spans.push(self.line);
        self.proto
            .ticks
            .push(weight + std::mem::take(&mut self.pending));
        self.proto.code.len() - 1
    }

    /// Emits a weight-0 instruction (no tree-walker tick maps here).
    fn emit(&mut self, op: Op) -> usize {
        self.emit_w(op, 0)
    }

    /// Emits a weight-1 instruction: the one op that carries its AST
    /// node's interpreter tick.
    fn emit_t(&mut self, op: Op) -> usize {
        self.emit_w(op, 1)
    }

    fn here(&self) -> u32 {
        self.proto.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        let op = &mut self.proto.code[at];
        *op = match *op {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfFalsePeek(_) => Op::JumpIfFalsePeek(target),
            Op::JumpIfTruePeek(_) => Op::JumpIfTruePeek(target),
            other => other,
        };
    }

    fn konst(&mut self, c: Const) -> u32 {
        if let Some(i) = self.proto.consts.iter().position(|x| x == &c) {
            return i as u32;
        }
        self.proto.consts.push(c);
        (self.proto.consts.len() - 1) as u32
    }

    fn name(&mut self, n: &str) -> u32 {
        if let Some(i) = self.proto.names.iter().position(|x| x == n) {
            return i as u32;
        }
        self.push_name(n)
    }

    /// Appends `n` to the name table (no dedup — object-literal keys
    /// must stay contiguous), keeping the atom table parallel.
    fn push_name(&mut self, n: &str) -> u32 {
        self.proto.names.push(n.to_string());
        self.proto.name_atoms.push(name_atom(n));
        (self.proto.names.len() - 1) as u32
    }

    /// Compile-time evaluation of a constant subtree: the folded value
    /// plus the number of ticks the tree-walker would charge to evaluate
    /// it. `None` when the subtree is not constant or folding would
    /// change semantics (e.g. a binary op that errors at runtime).
    fn eval_const(&self, expr: &Expr) -> Option<(Const, u32)> {
        if !self.options.fold {
            return None;
        }
        match expr {
            Expr::Number(n) => Some((Const::Number(*n), 1)),
            Expr::Str(s) => Some((Const::Str(s.clone()), 1)),
            Expr::Bool(b) => Some((Const::Bool(*b), 1)),
            Expr::Null => Some((Const::Null, 1)),
            Expr::Unary { op, operand } => {
                let (c, t) = self.eval_const(operand)?;
                let folded = match op {
                    UnaryOp::Neg => match c {
                        Const::Number(n) => Const::Number(-n),
                        // Negating a non-number is a runtime error;
                        // leave it to the backend.
                        _ => return None,
                    },
                    UnaryOp::Not => Const::Bool(!c.is_truthy()),
                };
                Some((folded, 1 + t))
            }
            Expr::Binary {
                op: op @ (BinaryOp::And | BinaryOp::Or),
                lhs,
                rhs,
            } => {
                // Short-circuit: a deciding constant lhs folds the whole
                // expression without looking at (or charging for) rhs,
                // exactly like the tree-walker's evaluation.
                let (l, lt) = self.eval_const(lhs)?;
                let decided = match op {
                    BinaryOp::And => !l.is_truthy(),
                    _ => l.is_truthy(),
                };
                if decided {
                    return Some((l, 1 + lt));
                }
                let (r, rt) = self.eval_const(rhs)?;
                Some((r, 1 + lt + rt))
            }
            Expr::Binary { op, lhs, rhs } => {
                let (l, lt) = self.eval_const(lhs)?;
                let (r, rt) = self.eval_const(rhs)?;
                // Errors (e.g. `null - 1`) must surface at runtime, so
                // only an Ok result folds. Division by zero is Ok
                // (Infinity, like JS) and folds.
                let v = builtins::binary_op(*op, &l.to_value(), &r.to_value()).ok()?;
                Some((Const::from_value(&v)?, 1 + lt + rt))
            }
            Expr::Conditional {
                cond,
                then_value,
                else_value,
            } => {
                let (c, ct) = self.eval_const(cond)?;
                let arm = if c.is_truthy() {
                    then_value
                } else {
                    else_value
                };
                let (v, vt) = self.eval_const(arm)?;
                Some((v, 1 + ct + vt))
            }
            _ => None,
        }
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::VarDecl { name, init, line } => {
                self.line = *line;
                match init {
                    Some(expr) => self.expr(expr)?,
                    None => {
                        let null = self.konst(Const::Null);
                        self.emit(Op::Const(null));
                    }
                }
                let n = self.name(name);
                self.emit_t(Op::DeclVar(n));
            }
            Stmt::FunctionDecl {
                name,
                params,
                body,
                line,
            } => {
                self.line = *line;
                let idx = compile_function(name.clone(), params, body, self.protos, self.options)?;
                self.emit(Op::MakeClosure(idx as u32));
                let n = self.name(name);
                self.emit_t(Op::DeclVar(n));
            }
            Stmt::Expr(expr) => {
                self.expr(expr)?;
                self.emit_t(Op::Pop);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if let Some((c, ct)) = self.eval_const(cond) {
                    // Dead-branch elision: only the taken branch is
                    // compiled; the `if` statement's tick and the
                    // condition's ticks attach to the branch's entry.
                    self.proto.folded += 1;
                    self.pending += 1 + ct;
                    let taken = if c.is_truthy() {
                        then_branch
                    } else {
                        else_branch
                    };
                    self.block(taken, 0)?;
                } else {
                    self.expr(cond)?;
                    let to_else = self.emit_t(Op::JumpIfFalse(0));
                    self.block(then_branch, 0)?;
                    if else_branch.is_empty() {
                        let end = self.here();
                        self.patch(to_else, end);
                    } else {
                        let to_end = self.emit(Op::Jump(0));
                        let else_at = self.here();
                        self.patch(to_else, else_at);
                        self.block(else_branch, 0)?;
                        let end = self.here();
                        self.patch(to_end, end);
                    }
                }
            }
            Stmt::While { cond, body } => {
                if let Some((c, ct)) = self.eval_const(cond) {
                    if !c.is_truthy() {
                        // Dead loop: the tree-walker evaluates the
                        // condition once and moves on; charge exactly
                        // that and elide the body.
                        self.proto.folded += 1;
                        self.pending += 1 + ct;
                        return Ok(());
                    }
                    // A constant-truthy condition still folds — via the
                    // generic expression path below — to one `Const`
                    // charged per iteration, matching the tree-walker's
                    // per-iteration re-evaluation.
                }
                // The `while` statement's own tick lands on a no-op jump
                // ahead of the loop header, so it is charged once per
                // arrival rather than once per iteration.
                let mark = self.emit_t(Op::Jump(0));
                self.patch(mark, mark as u32 + 1);
                let top = self.here();
                self.expr(cond)?;
                let exit = self.emit(Op::JumpIfFalse(0));
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                    scope_depth: self.scope_depth,
                });
                self.block(body, 0)?;
                let ctx = self.loops.pop().expect("loop ctx pushed above");
                for at in ctx.continues {
                    self.patch(at, top);
                }
                self.emit(Op::Jump(top));
                let end = self.here();
                self.patch(exit, end);
                for at in ctx.breaks {
                    self.patch(at, end);
                }
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                // The loop gets its own scope so `for (var i …)` does not
                // leak, matching the interpreter; the `for` statement's
                // tick rides on the scope push (once per arrival).
                self.emit_t(Op::PushScope);
                self.scope_depth += 1;
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let top = self.here();
                let exit = match cond {
                    Some(cond) => {
                        self.expr(cond)?;
                        Some(self.emit(Op::JumpIfFalse(0)))
                    }
                    None => None,
                };
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                    scope_depth: self.scope_depth,
                });
                self.block(body, 0)?;
                let ctx = self.loops.pop().expect("loop ctx pushed above");
                let update_at = self.here();
                for at in ctx.continues {
                    self.patch(at, update_at);
                }
                if let Some(update) = update {
                    self.expr(update)?;
                    self.emit(Op::Pop);
                }
                self.emit(Op::Jump(top));
                let end = self.here();
                if let Some(exit) = exit {
                    self.patch(exit, end);
                }
                for at in ctx.breaks {
                    self.patch(at, end);
                }
                self.emit(Op::PopScope);
                self.scope_depth -= 1;
            }
            Stmt::Return(value) => {
                match value {
                    Some(expr) => self.expr(expr)?,
                    None => {
                        let null = self.konst(Const::Null);
                        self.emit(Op::Const(null));
                    }
                }
                self.emit_t(Op::Return);
            }
            Stmt::Break => {
                let depth_now = self.scope_depth;
                let ctx_depth = self
                    .loops
                    .last()
                    .map(|c| c.scope_depth)
                    .ok_or_else(|| CompileError::new("`break` outside a loop"))?;
                for _ in ctx_depth..depth_now {
                    self.emit(Op::PopScope);
                }
                let at = self.emit_t(Op::Jump(0));
                self.loops
                    .last_mut()
                    .expect("checked above")
                    .breaks
                    .push(at);
            }
            Stmt::Continue => {
                let depth_now = self.scope_depth;
                let ctx_depth = self
                    .loops
                    .last()
                    .map(|c| c.scope_depth)
                    .ok_or_else(|| CompileError::new("`continue` outside a loop"))?;
                for _ in ctx_depth..depth_now {
                    self.emit(Op::PopScope);
                }
                let at = self.emit_t(Op::Jump(0));
                self.loops
                    .last_mut()
                    .expect("checked above")
                    .continues
                    .push(at);
            }
            Stmt::Block(body) => self.block(body, 1)?,
        }
        Ok(())
    }

    /// Compiles a statement list in a child scope. `weight` is the fuel
    /// weight of the scope push: 1 when the block is a statement of its
    /// own (the tree-walker ticks `Stmt::Block`), 0 when it is the body
    /// of an `if`/loop (the tree-walker's `exec_block` ticks nothing).
    fn block(&mut self, body: &[Stmt], weight: u32) -> Result<(), CompileError> {
        self.emit_w(Op::PushScope, weight);
        self.scope_depth += 1;
        for stmt in body {
            self.stmt(stmt)?;
        }
        self.emit(Op::PopScope);
        self.scope_depth -= 1;
        Ok(())
    }

    fn expr(&mut self, expr: &Expr) -> Result<(), CompileError> {
        // Constant folding: a whole constant subtree becomes one `Const`
        // carrying the subtree's tick weight (literals fold trivially
        // with weight 1 — identical to their unfolded compilation).
        if let Some((c, t)) = self.eval_const(expr) {
            if t > 1 {
                self.proto.folded += 1;
            }
            let i = self.konst(c);
            self.emit_w(Op::Const(i), t);
            return Ok(());
        }
        match expr {
            Expr::Number(n) => {
                let c = self.konst(Const::Number(*n));
                self.emit_t(Op::Const(c));
            }
            Expr::Str(s) => {
                let c = self.konst(Const::Str(s.clone()));
                self.emit_t(Op::Const(c));
            }
            Expr::Bool(b) => {
                let c = self.konst(Const::Bool(*b));
                self.emit_t(Op::Const(c));
            }
            Expr::Null => {
                let c = self.konst(Const::Null);
                self.emit_t(Op::Const(c));
            }
            Expr::Var(name) => {
                let n = self.name(name);
                self.emit_t(Op::GetVar(n));
            }
            Expr::Array(items) => {
                for item in items {
                    self.expr(item)?;
                }
                self.emit_t(Op::MakeArray(items.len() as u16));
            }
            Expr::Object(entries) => {
                // Keys must be contiguous in the name table so the VM can
                // recover them from `base..base+count`.
                let base = self.proto.names.len() as u32;
                for (key, _) in entries {
                    self.push_name(key);
                }
                for (_, value) in entries {
                    self.expr(value)?;
                }
                self.emit_t(Op::MakeObject {
                    base,
                    count: entries.len() as u16,
                });
            }
            Expr::Function { params, body } => {
                let idx = compile_function(String::new(), params, body, self.protos, self.options)?;
                self.emit_t(Op::MakeClosure(idx as u32));
            }
            Expr::Assign { target, value } => {
                match target {
                    Target::Var(name) => {
                        self.expr(value)?;
                        self.emit(Op::Dup); // assignment is an expression
                        let n = self.name(name);
                        self.emit_t(Op::SetVar(n));
                    }
                    Target::Member(object, property) => {
                        self.expr(value)?;
                        self.emit(Op::Dup);
                        self.expr(object)?;
                        // Stack: value, value, object.
                        let n = self.name(property);
                        self.emit_t(Op::SetMember(n));
                    }
                    Target::Index(object, index) => {
                        self.expr(value)?;
                        self.emit(Op::Dup);
                        self.expr(object)?;
                        self.expr(index)?;
                        // Stack: value, value, object, index.
                        self.emit_t(Op::SetIndex);
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::And => {
                    if let Some((l, lt)) = self.eval_const(lhs) {
                        // Whole-expression folding already failed, so a
                        // constant lhs here must be truthy with a
                        // non-constant rhs: `lhs && rhs` is `rhs`, with
                        // the `&&` and lhs ticks owed to rhs's entry.
                        debug_assert!(l.is_truthy());
                        self.proto.folded += 1;
                        self.pending += 1 + lt;
                        self.expr(rhs)?;
                    } else {
                        self.expr(lhs)?;
                        let skip = self.emit_t(Op::JumpIfFalsePeek(0));
                        self.emit(Op::Pop);
                        self.expr(rhs)?;
                        let end = self.here();
                        self.patch(skip, end);
                    }
                }
                BinaryOp::Or => {
                    if let Some((l, lt)) = self.eval_const(lhs) {
                        debug_assert!(!l.is_truthy());
                        self.proto.folded += 1;
                        self.pending += 1 + lt;
                        self.expr(rhs)?;
                    } else {
                        self.expr(lhs)?;
                        let skip = self.emit_t(Op::JumpIfTruePeek(0));
                        self.emit(Op::Pop);
                        self.expr(rhs)?;
                        let end = self.here();
                        self.patch(skip, end);
                    }
                }
                _ => {
                    self.expr(lhs)?;
                    self.expr(rhs)?;
                    self.emit_t(Op::Binary(*op));
                }
            },
            Expr::Unary { op, operand } => {
                self.expr(operand)?;
                self.emit_t(Op::Unary(*op));
            }
            Expr::Conditional {
                cond,
                then_value,
                else_value,
            } => {
                if let Some((c, ct)) = self.eval_const(cond) {
                    // Constant condition, non-constant taken arm: elide
                    // the test and the dead arm.
                    self.proto.folded += 1;
                    self.pending += 1 + ct;
                    let arm = if c.is_truthy() {
                        then_value
                    } else {
                        else_value
                    };
                    self.expr(arm)?;
                } else {
                    self.expr(cond)?;
                    let to_else = self.emit_t(Op::JumpIfFalse(0));
                    self.expr(then_value)?;
                    let to_end = self.emit(Op::Jump(0));
                    let else_at = self.here();
                    self.patch(to_else, else_at);
                    self.expr(else_value)?;
                    let end = self.here();
                    self.patch(to_end, end);
                }
            }
            Expr::Call { callee, args, line } => {
                self.line = *line;
                // Math namespace (when not shadowed — the VM re-checks at
                // runtime like the interpreter does).
                if let Expr::Member { object, property } = &**callee {
                    if matches!(&**object, Expr::Var(ns) if ns == "Math") {
                        for arg in args {
                            self.expr(arg)?;
                        }
                        let n = self.name(property);
                        self.line = *line;
                        self.emit_t(Op::CallMath {
                            name: n,
                            argc: args.len() as u8,
                        });
                        return Ok(());
                    }
                    // Method call: object below the arguments.
                    self.expr(object)?;
                    for arg in args {
                        self.expr(arg)?;
                    }
                    let n = self.name(property);
                    self.line = *line;
                    self.emit_t(Op::CallMethod {
                        name: n,
                        argc: args.len() as u8,
                    });
                    return Ok(());
                }
                if let Expr::Var(name) = &**callee {
                    for arg in args {
                        self.expr(arg)?;
                    }
                    let n = self.name(name);
                    self.line = *line;
                    self.emit_t(Op::CallName {
                        name: n,
                        argc: args.len() as u8,
                    });
                    return Ok(());
                }
                self.expr(callee)?;
                for arg in args {
                    self.expr(arg)?;
                }
                self.line = *line;
                self.emit_t(Op::CallValue {
                    argc: args.len() as u8,
                });
            }
            Expr::Member { object, property } => {
                self.expr(object)?;
                let n = self.name(property);
                self.emit_t(Op::GetMember(n));
            }
            Expr::Index { object, index } => {
                self.expr(object)?;
                self.expr(index)?;
                self.emit_t(Op::GetIndex);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile_src(src: &str) -> CompiledProgram {
        compile(&parse_program(src).unwrap()).unwrap()
    }

    fn compile_src_unfolded(src: &str) -> CompiledProgram {
        compile_with(&parse_program(src).unwrap(), CompileOptions { fold: false }).unwrap()
    }

    #[test]
    fn literal_arithmetic_folds_to_one_const() {
        let p = compile_src("var x = 1 + 2 * 3;");
        let main = &p.protos[p.main];
        assert!(!main.code.iter().any(|op| matches!(op, Op::Binary(_))));
        assert!(main.consts.contains(&Const::Number(7.0)));
        assert!(main.folded >= 1);
        // The folded Const carries the whole subtree's tick weight:
        // Add + Mul + three literals = 5.
        let at = main
            .code
            .iter()
            .position(|op| matches!(op, Op::Const(_)))
            .unwrap();
        assert_eq!(main.ticks[at], 5);
    }

    #[test]
    fn unfolded_compile_preserves_the_naive_shape() {
        let p = compile_src_unfolded("var x = 1 + 2 * 3;");
        let main = &p.protos[p.main];
        assert!(main.code.contains(&Op::Binary(BinaryOp::Add)));
        assert!(main.code.contains(&Op::Binary(BinaryOp::Mul)));
        assert!(main.consts.contains(&Const::Number(1.0)));
        assert_eq!(main.folded, 0);
    }

    #[test]
    fn folded_and_unfolded_charge_identical_ticks() {
        // Straight-line, fully live code only: the unfolded compile of a
        // *dead* branch contributes static ticks that never execute, so
        // static sums would differ there (dynamic charge parity for dead
        // branches is covered by the VM-level differential tests).
        let src = "var x = 1 + 2 * 3; var y = 'a' + 'b'; var z = x > 0 ? 1 : 2;";
        let folded = compile_src(src);
        let unfolded = compile_src_unfolded(src);
        let total = |p: &CompiledProgram| -> u64 {
            p.protos
                .iter()
                .flat_map(|proto| proto.ticks.iter())
                .map(|t| u64::from(*t))
                .sum()
        };
        // Straight-line code: every instruction executes once, so the
        // static tick sums must agree for charges to agree.
        assert_eq!(total(&folded), total(&unfolded));
        assert!(folded.protos[folded.main].code.len() < unfolded.protos[unfolded.main].code.len());
    }

    #[test]
    fn comparison_and_concat_fold() {
        let p = compile_src("var a = 2 < 3; var b = 'x' + 1;");
        let main = &p.protos[p.main];
        assert!(!main.code.iter().any(|op| matches!(op, Op::Binary(_))));
        assert!(main.consts.contains(&Const::Bool(true)));
        assert!(main.consts.contains(&Const::Str("x1".into())));
    }

    #[test]
    fn runtime_errors_do_not_fold() {
        // `null - 1` errors at runtime in both backends; the compiler
        // must leave it alone.
        let p = compile_src("var x = null - 1;");
        let main = &p.protos[p.main];
        assert!(main.code.contains(&Op::Binary(BinaryOp::Sub)));
    }

    #[test]
    fn dead_if_branch_is_elided() {
        let p = compile_src("if (false) { boom(); } else { var x = 1; }");
        let main = &p.protos[p.main];
        assert!(!main
            .code
            .iter()
            .any(|op| matches!(op, Op::CallName { .. } | Op::JumpIfFalse(_))));
        assert!(main.folded >= 1);
    }

    #[test]
    fn dead_while_loop_is_elided() {
        let p = compile_src("while (0) { boom(); } var x = 1;");
        let main = &p.protos[p.main];
        assert!(!main.code.iter().any(|op| matches!(op, Op::CallName { .. })));
        // The elided statement's ticks (while + cond = 2) land on the
        // next emitted instruction.
        let at = main
            .code
            .iter()
            .position(|op| matches!(op, Op::Const(_)))
            .unwrap();
        assert_eq!(main.ticks[at], 3); // 1 (literal) + 2 (elided while)
    }

    #[test]
    fn short_circuit_folds_keep_rhs_when_needed() {
        // `0 && boom()` folds entirely; `1 && f()` keeps the call.
        let p = compile_src("var a = 0 && boom(); var b = 1 && f();");
        let main = &p.protos[p.main];
        let calls: Vec<&Op> = main
            .code
            .iter()
            .filter(|op| matches!(op, Op::CallName { .. }))
            .collect();
        assert_eq!(calls.len(), 1, "only the live rhs call survives");
        assert!(main.consts.contains(&Const::Number(0.0)));
    }

    #[test]
    fn constant_pool_dedups() {
        let p = compile_src("var x = 5; var y = 5; var z = 5;");
        let main = &p.protos[p.main];
        let fives = main
            .consts
            .iter()
            .filter(|c| **c == Const::Number(5.0))
            .count();
        assert_eq!(fives, 1);
    }

    #[test]
    fn functions_get_own_protos() {
        let p = compile_src(
            "function f(a) { return a; }
             function g() { return f(1); }",
        );
        assert_eq!(p.protos.len(), 3); // f, g, main
        assert!(p.protos.iter().any(|proto| proto.name == "f"));
        assert!(p.protos.iter().any(|proto| proto.name == "g"));
    }

    #[test]
    fn side_tables_are_parallel_and_atomized() {
        let p = compile_src(
            "function f(a, b) { var sum = a + b; return sum; }
             var out = f(1, 2);",
        );
        for proto in p.protos.iter() {
            assert_eq!(proto.code.len(), proto.spans.len());
            assert_eq!(proto.code.len(), proto.ticks.len());
            assert_eq!(proto.names.len(), proto.name_atoms.len());
            assert_eq!(proto.params.len(), proto.param_atoms.len());
            for (name, atom) in proto.names.iter().zip(&proto.name_atoms) {
                assert_eq!(*atom, name_atom(name));
            }
            for (param, atom) in proto.params.iter().zip(&proto.param_atoms) {
                assert_eq!(*atom, name_atom(param));
            }
        }
    }

    #[test]
    fn call_spans_carry_source_lines() {
        let p = compile_src("var x = 1;\nf(x);\n");
        let main = &p.protos[p.main];
        let at = main
            .code
            .iter()
            .position(|op| matches!(op, Op::CallName { .. }))
            .unwrap();
        assert_eq!(main.spans[at], 2);
    }

    #[test]
    fn jumps_are_patched_in_range() {
        let p = compile_src(
            "var x = 0;
             if (x < 1) { x = 1; } else { x = 2; }
             while (x < 10) { x = x + 1; if (x == 5) { break; } }
             for (var i = 0; i < 3; i++) { if (i == 1) { continue; } x += i; }",
        );
        for proto in p.protos.iter() {
            let len = proto.code.len() as u32;
            for op in &proto.code {
                let target = match op {
                    Op::Jump(t)
                    | Op::JumpIfFalse(t)
                    | Op::JumpIfFalsePeek(t)
                    | Op::JumpIfTruePeek(t) => Some(*t),
                    _ => None,
                };
                if let Some(t) = target {
                    assert!(t <= len, "jump target {t} out of range {len}");
                    assert!(t != 0 || len == 0, "unpatched jump");
                }
            }
        }
    }

    #[test]
    fn break_outside_loop_rejected() {
        let program = parse_program("break;").unwrap();
        assert!(compile(&program).is_err());
        let program = parse_program("continue;").unwrap();
        assert!(compile(&program).is_err());
    }

    #[test]
    fn math_calls_compile_to_callmath() {
        let p = compile_src("var x = Math.floor(1.5);");
        let main = &p.protos[p.main];
        assert!(main
            .code
            .iter()
            .any(|op| matches!(op, Op::CallMath { argc: 1, .. })));
    }

    #[test]
    fn object_literal_keys_are_contiguous() {
        let p = compile_src("var o = { a: 1, b: 2, c: 3 };");
        let main = &p.protos[p.main];
        let Some(Op::MakeObject { base, count }) = main
            .code
            .iter()
            .find(|op| matches!(op, Op::MakeObject { .. }))
        else {
            panic!("no MakeObject");
        };
        assert_eq!(*count, 3);
        let keys: Vec<&str> = (0..3)
            .map(|i| main.names[(*base + i) as usize].as_str())
            .collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }
}
