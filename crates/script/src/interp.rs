//! Tree-walking interpreter with lexical scoping and a pluggable host.
//!
//! This is the language's *reference* backend. The browser engine
//! executes compiled bytecode ([`crate::vm::Vm`]) by default and keeps
//! this tree-walker as the differential oracle behind
//! `GREENWEB_SCRIPT_VM=off`; the differential suite requires both
//! backends to agree on values, typed errors, and charged ops.
//!
//! The interpreter counts every evaluated statement/expression in
//! [`Interpreter::ops`] (via the shared [`Fuel`] budget); the browser
//! engine converts that count into CPU cycles when charging callback
//! execution to the ACMP performance model, so heavier scripts genuinely
//! take longer frames.

use crate::ast::{BinaryOp, Expr, Program, Stmt, Target, UnaryOp};
use crate::atom::name_atom;
use crate::fuel::Fuel;
use crate::value::{Closure, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A shared, mutable lexical scope.
pub type ScopeRef = Rc<RefCell<Scope>>;

/// One lexical scope: bindings plus an optional parent.
///
/// Bindings are keyed by [`name_atom`] rather than by owned strings, so
/// a lookup is an integer probe per scope level. The tree-walker
/// atomizes on every access (it is the oracle, not the fast path); the
/// bytecode compiler atomizes once at compile time.
#[derive(Debug, Default)]
pub struct Scope {
    vars: HashMap<u64, Value>,
    parent: Option<ScopeRef>,
}

impl Scope {
    /// Creates a child scope of `parent`.
    pub fn child(parent: ScopeRef) -> ScopeRef {
        Rc::new(RefCell::new(Scope {
            vars: HashMap::new(),
            parent: Some(parent),
        }))
    }

    pub(crate) fn lookup(scope: &ScopeRef, name: &str) -> Option<Value> {
        Self::lookup_atom(scope, name_atom(name))
    }

    pub(crate) fn lookup_atom(scope: &ScopeRef, atom: u64) -> Option<Value> {
        let mut current = Some(scope.clone());
        while let Some(s) = current {
            let s = s.borrow();
            if let Some(v) = s.vars.get(&atom) {
                return Some(v.clone());
            }
            current = s.parent.clone();
        }
        None
    }

    pub(crate) fn declare(scope: &ScopeRef, name: &str, value: Value) {
        Self::declare_atom(scope, name_atom(name), value);
    }

    pub(crate) fn declare_atom(scope: &ScopeRef, atom: u64, value: Value) {
        scope.borrow_mut().vars.insert(atom, value);
    }

    pub(crate) fn assign(scope: &ScopeRef, name: &str, value: Value) -> bool {
        Self::assign_atom(scope, name_atom(name), value)
    }

    pub(crate) fn assign_atom(scope: &ScopeRef, atom: u64, value: Value) -> bool {
        let mut current = Some(scope.clone());
        while let Some(s) = current {
            let mut s = s.borrow_mut();
            if let Some(slot) = s.vars.get_mut(&atom) {
                *slot = value;
                return true;
            }
            current = s.parent.clone();
        }
        false
    }
}

/// Runtime error raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError {
    message: String,
    op_limit: bool,
}

impl ScriptError {
    /// Creates a runtime error.
    pub fn new(message: impl Into<String>) -> Self {
        ScriptError {
            message: message.into(),
            op_limit: false,
        }
    }

    /// Creates the fuel-exhaustion error: the execution budget (op
    /// limit) ran out. Kept as a distinct class so embedders can treat
    /// a runaway script as a *watchdog* outcome rather than a program
    /// bug — the fleet supervisor quarantines the two differently.
    pub fn op_limit(message: impl Into<String>) -> Self {
        ScriptError {
            message: message.into(),
            op_limit: true,
        }
    }

    /// True when this error is fuel exhaustion ([`ScriptError::op_limit`])
    /// rather than a genuine runtime error.
    pub fn is_op_limit(&self) -> bool {
        self.op_limit
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script error: {}", self.message)
    }
}

impl std::error::Error for ScriptError {}

/// The host interface: native functions the embedding browser exposes to
/// scripts (`getElementById`, `requestAnimationFrame`, `work`, …).
///
/// `call` returns `None` when `name` is not a host function, letting the
/// interpreter report an undefined-variable error instead.
pub trait Host {
    /// Invokes host function `name` with `args`.
    fn call(&mut self, name: &str, args: &[Value]) -> Option<Result<Value, ScriptError>>;
}

/// A host providing no native functions (useful for pure computation).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHost;

impl Host for NoHost {
    fn call(&mut self, _name: &str, _args: &[Value]) -> Option<Result<Value, ScriptError>> {
        None
    }
}

/// Control-flow outcome of executing a statement.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// The interpreter: global scope + execution budget + op counter.
#[derive(Debug)]
pub struct Interpreter {
    globals: ScopeRef,
    fuel: Fuel,
    rng_state: u64,
}

impl Interpreter {
    /// Default maximum number of evaluation steps per `run`/`call` before
    /// an infinite-loop error is raised (shared with the bytecode VM).
    pub const DEFAULT_OP_LIMIT: u64 = crate::fuel::DEFAULT_OP_LIMIT;

    /// Creates an interpreter with an empty global scope.
    pub fn new() -> Self {
        Interpreter {
            globals: Rc::new(RefCell::new(Scope::default())),
            fuel: Fuel::default(),
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Overrides the op limit (per whole interpreter lifetime).
    pub fn with_op_limit(mut self, limit: u64) -> Self {
        self.fuel.set_limit(limit);
        self
    }

    /// Sets the op limit on a live interpreter. Combined with
    /// [`Interpreter::reset_ops`] (which the engine calls per callback)
    /// this acts as a per-callback fuel ceiling: the watchdog budget a
    /// supervised run enforces against runaway generated workloads.
    pub fn set_op_limit(&mut self, limit: u64) {
        self.fuel.set_limit(limit);
    }

    /// The current op limit.
    pub fn op_limit(&self) -> u64 {
        self.fuel.limit()
    }

    /// Number of evaluation steps executed so far.
    pub fn ops(&self) -> u64 {
        self.fuel.used()
    }

    /// Resets the op counter (the engine does this per callback so each
    /// callback's cost is measured independently).
    pub fn reset_ops(&mut self) {
        self.fuel.reset();
    }

    /// Reads a global binding.
    pub fn global(&self, name: &str) -> Option<Value> {
        Scope::lookup(&self.globals, name)
    }

    /// Creates or overwrites a global binding.
    pub fn set_global(&mut self, name: impl Into<String>, value: Value) {
        Scope::declare(&self.globals, &name.into(), value);
    }

    /// Executes a whole program at global scope.
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError`] on runtime errors (undefined variables,
    /// type errors, op-limit exhaustion, or errors raised by the host).
    pub fn run(&mut self, program: &Program, host: &mut dyn Host) -> Result<(), ScriptError> {
        let globals = self.globals.clone();
        for stmt in &program.body {
            if let Flow::Return(_) = self.exec_stmt(stmt, &globals, host)? {
                break;
            }
        }
        Ok(())
    }

    /// Calls a function value with `args`. Used by the engine to invoke
    /// event callbacks, rAF callbacks, and timers.
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError`] if `callee` is not a function or its body
    /// raises an error.
    pub fn call_function(
        &mut self,
        callee: &Value,
        args: &[Value],
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        match callee {
            Value::Function(closure) => self.invoke_closure(closure, args, host),
            other => Err(ScriptError::new(format!(
                "cannot call a value of type {}",
                other.type_name()
            ))),
        }
    }

    fn invoke_closure(
        &mut self,
        closure: &Rc<Closure>,
        args: &[Value],
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        let scope = Scope::child(closure.env.clone());
        for (i, param) in closure.params.iter().enumerate() {
            Scope::declare(&scope, param, args.get(i).cloned().unwrap_or(Value::Null));
        }
        for stmt in closure.body.iter() {
            if let Flow::Return(v) = self.exec_stmt(stmt, &scope, host)? {
                return Ok(v);
            }
        }
        Ok(Value::Null)
    }

    fn tick(&mut self) -> Result<(), ScriptError> {
        self.fuel.tick()
    }

    fn exec_block(
        &mut self,
        body: &[Stmt],
        parent: &ScopeRef,
        host: &mut dyn Host,
    ) -> Result<Flow, ScriptError> {
        let scope = Scope::child(parent.clone());
        for stmt in body {
            match self.exec_stmt(stmt, &scope, host)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        scope: &ScopeRef,
        host: &mut dyn Host,
    ) -> Result<Flow, ScriptError> {
        self.tick()?;
        match stmt {
            Stmt::VarDecl { name, init, .. } => {
                let value = match init {
                    Some(expr) => self.eval(expr, scope, host)?,
                    None => Value::Null,
                };
                Scope::declare(scope, name, value);
                Ok(Flow::Normal)
            }
            Stmt::FunctionDecl {
                name, params, body, ..
            } => {
                let closure = Value::Function(Rc::new(Closure {
                    name: name.clone(),
                    params: params.clone(),
                    body: body.clone(),
                    env: scope.clone(),
                }));
                Scope::declare(scope, name, closure);
                Ok(Flow::Normal)
            }
            Stmt::Expr(expr) => {
                self.eval(expr, scope, host)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond, scope, host)?.is_truthy() {
                    self.exec_block(then_branch, scope, host)
                } else {
                    self.exec_block(else_branch, scope, host)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, scope, host)?.is_truthy() {
                    match self.exec_block(body, scope, host)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                let loop_scope = Scope::child(scope.clone());
                if let Some(init) = init {
                    self.exec_stmt(init, &loop_scope, host)?;
                }
                loop {
                    let keep_going = match cond {
                        Some(cond) => self.eval(cond, &loop_scope, host)?.is_truthy(),
                        None => true,
                    };
                    if !keep_going {
                        break;
                    }
                    match self.exec_block(body, &loop_scope, host)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(update) = update {
                        self.eval(update, &loop_scope, host)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(expr) => self.eval(expr, scope, host)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Block(body) => self.exec_block(body, scope, host),
        }
    }

    fn eval(
        &mut self,
        expr: &Expr,
        scope: &ScopeRef,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        self.tick()?;
        match expr {
            Expr::Number(n) => Ok(Value::Number(*n)),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Var(name) => Scope::lookup(scope, name)
                .ok_or_else(|| ScriptError::new(format!("undefined variable `{name}`"))),
            Expr::Array(items) => {
                let values = items
                    .iter()
                    .map(|e| self.eval(e, scope, host))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::array(values))
            }
            Expr::Object(entries) => {
                let object = Value::object();
                if let Value::Object(map) = &object {
                    for (key, expr) in entries {
                        let value = self.eval(expr, scope, host)?;
                        map.borrow_mut().insert(key.clone(), value);
                    }
                }
                Ok(object)
            }
            Expr::Function { params, body } => Ok(Value::Function(Rc::new(Closure {
                name: String::new(),
                params: params.clone(),
                body: body.clone(),
                env: scope.clone(),
            }))),
            Expr::Assign { target, value } => {
                let value = self.eval(value, scope, host)?;
                self.assign(target, value.clone(), scope, host)?;
                Ok(value)
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, scope, host),
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, scope, host)?;
                match op {
                    UnaryOp::Neg => match v {
                        Value::Number(n) => Ok(Value::Number(-n)),
                        other => Err(ScriptError::new(format!(
                            "cannot negate a {}",
                            other.type_name()
                        ))),
                    },
                    UnaryOp::Not => Ok(Value::Bool(!v.is_truthy())),
                }
            }
            Expr::Conditional {
                cond,
                then_value,
                else_value,
            } => {
                if self.eval(cond, scope, host)?.is_truthy() {
                    self.eval(then_value, scope, host)
                } else {
                    self.eval(else_value, scope, host)
                }
            }
            Expr::Call { callee, args, line } => self.eval_call(callee, args, *line, scope, host),
            Expr::Member { object, property } => {
                let obj = self.eval(object, scope, host)?;
                self.get_member(&obj, property)
            }
            Expr::Index { object, index } => {
                let obj = self.eval(object, scope, host)?;
                let idx = self.eval(index, scope, host)?;
                self.get_index(&obj, &idx)
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
        scope: &ScopeRef,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        // Short-circuit operators.
        match op {
            BinaryOp::And => {
                let l = self.eval(lhs, scope, host)?;
                return if l.is_truthy() {
                    self.eval(rhs, scope, host)
                } else {
                    Ok(l)
                };
            }
            BinaryOp::Or => {
                let l = self.eval(lhs, scope, host)?;
                return if l.is_truthy() {
                    Ok(l)
                } else {
                    self.eval(rhs, scope, host)
                };
            }
            _ => {}
        }
        let l = self.eval(lhs, scope, host)?;
        let r = self.eval(rhs, scope, host)?;
        crate::builtins::binary_op(op, &l, &r)
    }

    fn eval_call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        line: u32,
        scope: &ScopeRef,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        // Method-style calls: builtin methods on arrays/strings and the
        // Math namespace.
        if let Expr::Member { object, property } = callee {
            if let Expr::Var(ns) = &**object {
                if ns == "Math" && Scope::lookup(scope, ns).is_none() {
                    let values = self.eval_args(args, scope, host)?;
                    return self.math_call(property, &values);
                }
            }
            let obj = self.eval(object, scope, host)?;
            match &obj {
                Value::Array(items) => {
                    let values = self.eval_args(args, scope, host)?;
                    return crate::builtins::array_method(items, property, &values);
                }
                Value::Str(s) => {
                    let values = self.eval_args(args, scope, host)?;
                    return crate::builtins::string_method(s, property, &values);
                }
                Value::Object(map) => {
                    let method = map.borrow().get(property.as_str()).cloned();
                    if let Some(f) = method {
                        let values = self.eval_args(args, scope, host)?;
                        return self.call_function(&f, &values, host);
                    }
                    return Err(ScriptError::new(format!(
                        "object has no method `{property}` (line {line})"
                    )));
                }
                other => {
                    return Err(ScriptError::new(format!(
                        "{} has no method `{property}` (line {line})",
                        other.type_name()
                    )))
                }
            }
        }
        // Bare-name calls: script function, else host function.
        if let Expr::Var(name) = callee {
            match Scope::lookup(scope, name) {
                Some(f) => {
                    let values = self.eval_args(args, scope, host)?;
                    return self.call_function(&f, &values, host);
                }
                None => {
                    let values = self.eval_args(args, scope, host)?;
                    return match host.call(name, &values) {
                        Some(result) => result,
                        None => Err(ScriptError::new(format!(
                            "undefined function `{name}` (line {line})"
                        ))),
                    };
                }
            }
        }
        let f = self.eval(callee, scope, host)?;
        let values = self.eval_args(args, scope, host)?;
        self.call_function(&f, &values, host)
    }

    fn eval_args(
        &mut self,
        args: &[Expr],
        scope: &ScopeRef,
        host: &mut dyn Host,
    ) -> Result<Vec<Value>, ScriptError> {
        args.iter().map(|a| self.eval(a, scope, host)).collect()
    }

    fn math_call(&mut self, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        crate::builtins::math_call(&mut self.rng_state, name, args)
    }
    fn get_member(&self, obj: &Value, property: &str) -> Result<Value, ScriptError> {
        crate::builtins::get_member(obj, property)
    }
    fn get_index(&self, obj: &Value, index: &Value) -> Result<Value, ScriptError> {
        crate::builtins::get_index(obj, index)
    }
    fn assign(
        &mut self,
        target: &Target,
        value: Value,
        scope: &ScopeRef,
        host: &mut dyn Host,
    ) -> Result<(), ScriptError> {
        match target {
            Target::Var(name) => {
                if Scope::assign(scope, name, value) {
                    Ok(())
                } else {
                    Err(ScriptError::new(format!(
                        "assignment to undeclared variable `{name}`"
                    )))
                }
            }
            Target::Member(object, property) => {
                let obj = self.eval(object, scope, host)?;
                crate::builtins::set_member(&obj, property, value)
            }
            Target::Index(object, index) => {
                let obj = self.eval(object, scope, host)?;
                let idx = self.eval(index, scope, host)?;
                crate::builtins::set_index(&obj, &idx, value)
            }
        }
    }
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str) -> Interpreter {
        let program = parse_program(src).unwrap();
        let mut interp = Interpreter::new();
        interp.run(&program, &mut NoHost).unwrap();
        interp
    }

    fn global_number(interp: &Interpreter, name: &str) -> f64 {
        interp.global(name).unwrap().as_number().unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        let interp = run("var x = 1 + 2 * 3 - 4 / 2;");
        assert_eq!(global_number(&interp, "x"), 5.0);
    }

    #[test]
    fn string_concatenation() {
        let interp = run("var s = 'a' + 1 + true;");
        assert_eq!(interp.global("s").unwrap().as_str(), Some("a1true"));
    }

    #[test]
    fn recursion_fibonacci() {
        let interp = run(
            "function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
             var x = fib(15);",
        );
        assert_eq!(global_number(&interp, "x"), 610.0);
    }

    #[test]
    fn closures_capture_environment() {
        let interp = run(
            "function counter() { var n = 0; return function() { n = n + 1; return n; }; }
             var c = counter();
             c(); c();
             var x = c();",
        );
        assert_eq!(global_number(&interp, "x"), 3.0);
    }

    #[test]
    fn while_loop_with_break_continue() {
        let interp = run("var sum = 0; var i = 0;
             while (true) {
               i = i + 1;
               if (i > 10) { break; }
               if (i % 2 == 0) { continue; }
               sum = sum + i;
             }");
        assert_eq!(global_number(&interp, "sum"), 25.0);
    }

    #[test]
    fn for_loop_sums() {
        let interp = run("var s = 0; for (var i = 1; i <= 100; i++) { s += i; }");
        assert_eq!(global_number(&interp, "s"), 5050.0);
    }

    #[test]
    fn arrays_push_index_length() {
        let interp = run(
            "var a = [1, 2]; a.push(3); a[0] = 10; var n = a.length; var v = a[2]; var j = a.join('-');",
        );
        assert_eq!(global_number(&interp, "n"), 3.0);
        assert_eq!(global_number(&interp, "v"), 3.0);
        assert_eq!(interp.global("j").unwrap().as_str(), Some("10-2-3"));
    }

    #[test]
    fn objects_member_and_index() {
        let interp = run(
            "var o = { a: 1 }; o.b = 2; o['c'] = 3; var x = o.a + o.b + o['c']; var missing = o.zzz;",
        );
        assert_eq!(global_number(&interp, "x"), 6.0);
        assert_eq!(interp.global("missing"), Some(Value::Null));
    }

    #[test]
    fn object_method_call() {
        let interp = run("var o = { val: 5, get: function() { return 42; } }; var x = o.get();");
        assert_eq!(global_number(&interp, "x"), 42.0);
    }

    #[test]
    fn math_builtins() {
        let interp = run("var x = Math.floor(3.7) + Math.max(1, 2) + Math.pow(2, 3);");
        assert_eq!(global_number(&interp, "x"), 13.0);
    }

    #[test]
    fn math_random_is_deterministic() {
        let a = run("var x = Math.random();");
        let b = run("var x = Math.random();");
        assert_eq!(global_number(&a, "x"), global_number(&b, "x"));
        let x = global_number(&a, "x");
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn ternary_and_logic() {
        let interp = run("var x = (1 < 2 && 3 > 2) ? 'yes' : 'no'; var y = null || 5;");
        assert_eq!(interp.global("x").unwrap().as_str(), Some("yes"));
        assert_eq!(global_number(&interp, "y"), 5.0);
    }

    #[test]
    fn string_methods() {
        let interp = run(
            "var s = 'Hello'; var up = s.toUpperCase(); var i = s.indexOf('ll'); var sub = s.substring(1, 3);",
        );
        assert_eq!(interp.global("up").unwrap().as_str(), Some("HELLO"));
        assert_eq!(global_number(&interp, "i"), 2.0);
        assert_eq!(interp.global("sub").unwrap().as_str(), Some("el"));
    }

    #[test]
    fn undefined_variable_errors() {
        let program = parse_program("var x = nope;").unwrap();
        let err = Interpreter::new().run(&program, &mut NoHost).unwrap_err();
        assert!(err.to_string().contains("undefined variable"));
    }

    #[test]
    fn undeclared_assignment_errors() {
        let program = parse_program("nope = 1;").unwrap();
        let err = Interpreter::new().run(&program, &mut NoHost).unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn op_limit_stops_infinite_loop() {
        let program = parse_program("while (true) { }").unwrap();
        let mut interp = Interpreter::new().with_op_limit(10_000);
        let err = interp.run(&program, &mut NoHost).unwrap_err();
        assert!(err.to_string().contains("op limit"));
        assert!(err.is_op_limit(), "fuel exhaustion must be typed");
    }

    #[test]
    fn op_limit_is_retunable_on_a_live_interpreter() {
        let program = parse_program("while (true) { }").unwrap();
        let mut interp = Interpreter::new();
        interp.set_op_limit(500);
        assert_eq!(interp.op_limit(), 500);
        let err = interp.run(&program, &mut NoHost).unwrap_err();
        assert!(err.is_op_limit());
        assert!(interp.ops() <= 501, "must stop right at the ceiling");
    }

    #[test]
    fn ordinary_errors_are_not_fuel_exhaustion() {
        let program = parse_program("nope = 1;").unwrap();
        let err = Interpreter::new().run(&program, &mut NoHost).unwrap_err();
        assert!(!err.is_op_limit());
    }

    #[test]
    fn ops_counter_scales_with_work() {
        let small = run("var s = 0; for (var i = 0; i < 10; i++) { s += i; }");
        let large = run("var s = 0; for (var i = 0; i < 1000; i++) { s += i; }");
        assert!(large.ops() > small.ops() * 10);
    }

    struct RecordingHost {
        calls: Vec<(String, Vec<Value>)>,
    }

    impl Host for RecordingHost {
        fn call(&mut self, name: &str, args: &[Value]) -> Option<Result<Value, ScriptError>> {
            if name == "work" {
                self.calls.push((name.to_string(), args.to_vec()));
                Some(Ok(Value::Null))
            } else if name == "now" {
                Some(Ok(Value::Number(123.0)))
            } else {
                None
            }
        }
    }

    #[test]
    fn host_functions_called_by_bare_name() {
        let program = parse_program("work(500); var t = now();").unwrap();
        let mut interp = Interpreter::new();
        let mut host = RecordingHost { calls: Vec::new() };
        interp.run(&program, &mut host).unwrap();
        assert_eq!(host.calls.len(), 1);
        assert_eq!(host.calls[0].1[0], Value::Number(500.0));
        assert_eq!(interp.global("t"), Some(Value::Number(123.0)));
    }

    #[test]
    fn script_function_shadows_host() {
        let program = parse_program("function now() { return 1; } var t = now();").unwrap();
        let mut interp = Interpreter::new();
        let mut host = RecordingHost { calls: Vec::new() };
        interp.run(&program, &mut host).unwrap();
        assert_eq!(interp.global("t"), Some(Value::Number(1.0)));
    }

    #[test]
    fn call_function_from_host_side() {
        let program = parse_program("function double(x) { return x * 2; }").unwrap();
        let mut interp = Interpreter::new();
        interp.run(&program, &mut NoHost).unwrap();
        let f = interp.global("double").unwrap();
        let result = interp
            .call_function(&f, &[Value::Number(21.0)], &mut NoHost)
            .unwrap();
        assert_eq!(result, Value::Number(42.0));
    }

    #[test]
    fn calling_non_function_errors() {
        let mut interp = Interpreter::new();
        let err = interp
            .call_function(&Value::Number(1.0), &[], &mut NoHost)
            .unwrap_err();
        assert!(err.to_string().contains("cannot call"));
    }

    #[test]
    fn set_global_visible_to_script() {
        let program = parse_program("var y = seed * 2;").unwrap();
        let mut interp = Interpreter::new();
        interp.set_global("seed", Value::Number(21.0));
        interp.run(&program, &mut NoHost).unwrap();
        assert_eq!(interp.global("y"), Some(Value::Number(42.0)));
    }

    #[test]
    fn block_scoping() {
        let interp = run("var x = 1; { var x = 2; } var y = x;");
        assert_eq!(global_number(&interp, "y"), 1.0);
    }

    #[test]
    fn division_by_zero_is_infinity() {
        let interp = run("var x = 1 / 0;");
        assert_eq!(global_number(&interp, "x"), f64::INFINITY);
    }
}
