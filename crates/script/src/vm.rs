//! The bytecode virtual machine: the engine's default script backend.
//!
//! Executes [`crate::compiler::CompiledProgram`]s on an operand stack
//! with the same observable semantics as the tree-walking
//! [`crate::Interpreter`] — same values, same scoping (a shared
//! scope-chain representation), same typed errors with the same source
//! lines, same host interface, same deterministic `Math.random`. The
//! differential test suite runs random programs through both backends
//! and requires identical results.
//!
//! Two counters, two meanings:
//!
//! - [`Vm::ops`] is the *charged* count: per-instruction fuel weights
//!   from [`crate::compiler::Proto::ticks`] that sum to exactly what the
//!   tree-walker would have ticked for the same execution. The engine's
//!   cost model, `RunBudget.max_callback_ops`, and trace attribution all
//!   read this, so switching backends changes no simulated numbers.
//! - [`Vm::dispatches`] is the *raw* instruction count — what the VM
//!   actually executed. Constant folding lowers dispatches while leaving
//!   ops unchanged; the script bench reports both.
//!
//! One documented divergence: shadowing the `Math` namespace with a user
//! binding is rejected at runtime by the VM (the compiler specializes
//! `Math.*` calls), where the interpreter would treat it as an object.

use crate::atom::name_atom;
use crate::builtins;
use crate::compiler::{compile, CompiledProgram, Const, Op, Proto};
use crate::fuel::Fuel;
use crate::interp::{Host, Scope, ScopeRef, ScriptError};
use crate::parser::parse_program;
use crate::value::{Value, VmClosure};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// The bytecode VM: global scope + op budget + RNG state.
#[derive(Debug)]
pub struct Vm {
    globals: ScopeRef,
    fuel: Fuel,
    dispatches: u64,
    rng_state: u64,
}

impl Vm {
    /// Creates a VM with an empty global scope.
    pub fn new() -> Self {
        Vm {
            globals: Rc::new(RefCell::new(Scope::default())),
            fuel: Fuel::default(),
            dispatches: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Overrides the op limit.
    pub fn with_op_limit(mut self, limit: u64) -> Self {
        self.fuel.set_limit(limit);
        self
    }

    /// Sets the fuel ceiling on a live VM (see
    /// [`crate::Interpreter::set_op_limit`] — same watchdog contract,
    /// same shared [`Fuel`] implementation).
    pub fn set_op_limit(&mut self, limit: u64) {
        self.fuel.set_limit(limit);
    }

    /// The current op limit.
    pub fn op_limit(&self) -> u64 {
        self.fuel.limit()
    }

    /// Evaluation steps charged so far: equals the tree-walking
    /// interpreter's op count for the same execution (see module docs).
    pub fn ops(&self) -> u64 {
        self.fuel.used()
    }

    /// Raw instructions executed so far (folding makes this lower than
    /// [`Vm::ops`]; the gap is the fold win).
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Resets both counters (the engine does this per callback so each
    /// callback's cost is measured independently).
    pub fn reset_ops(&mut self) {
        self.fuel.reset();
        self.dispatches = 0;
    }

    /// Reads a global binding.
    pub fn global(&self, name: &str) -> Option<Value> {
        Scope::lookup(&self.globals, name)
    }

    /// Creates or overwrites a global binding.
    pub fn set_global(&mut self, name: impl Into<String>, value: Value) {
        Scope::declare(&self.globals, &name.into(), value);
    }

    /// Compiles and runs `source` in one step.
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError`] on parse, compile, or runtime errors.
    pub fn run_source(&mut self, source: &str, host: &mut dyn Host) -> Result<(), ScriptError> {
        let program = parse_program(source).map_err(|e| ScriptError::new(e.to_string()))?;
        let compiled = compile(&program).map_err(|e| ScriptError::new(e.to_string()))?;
        self.run(&compiled, host)
    }

    /// Runs a compiled program at global scope.
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError`] on runtime errors.
    pub fn run(
        &mut self,
        program: &CompiledProgram,
        host: &mut dyn Host,
    ) -> Result<(), ScriptError> {
        // The main body runs directly in the global scope, like the
        // tree-walking interpreter.
        let globals = self.globals.clone();
        self.exec(Arc::clone(&program.protos), program.main, globals, host)?;
        Ok(())
    }

    /// Calls a VM function value with `args`.
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError`] if `callee` is not a VM function.
    pub fn call_function(
        &mut self,
        callee: &Value,
        args: &[Value],
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        match callee {
            Value::VmFunction(closure) => {
                let frame = Scope::child(closure.env.clone());
                let proto = closure.protos.get(closure.proto).ok_or_else(|| {
                    ScriptError::new(format!(
                        "malformed bytecode: closure proto index {} out of range",
                        closure.proto
                    ))
                })?;
                for (i, param) in proto.params.iter().enumerate() {
                    let atom = proto
                        .param_atoms
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| name_atom(param));
                    Scope::declare_atom(&frame, atom, args.get(i).cloned().unwrap_or(Value::Null));
                }
                self.exec(Arc::clone(&closure.protos), closure.proto, frame, host)
            }
            Value::Function(_) => Err(ScriptError::new(
                "cannot call a tree-walker closure from the bytecode VM",
            )),
            other => Err(ScriptError::new(format!(
                "cannot call a value of type {}",
                other.type_name()
            ))),
        }
    }

    fn exec(
        &mut self,
        protos: Arc<Vec<Proto>>,
        proto_idx: usize,
        frame_scope: ScopeRef,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        let proto = protos.get(proto_idx).ok_or_else(|| {
            ScriptError::new(format!(
                "malformed bytecode: proto index {proto_idx} out of range"
            ))
        })?;
        let mut scopes: Vec<ScopeRef> = vec![frame_scope];
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut pc: usize = 0;
        // The source line of the instruction at `pc - 1` (the one being
        // executed), for interpreter-identical call-site error messages.
        // Hand-built protos without spans report line 0.
        let line_at =
            |pc: usize| -> u32 { proto.spans.get(pc.wrapping_sub(1)).copied().unwrap_or(0) };
        macro_rules! pop {
            () => {
                stack
                    .pop()
                    .ok_or_else(|| ScriptError::new("stack underflow"))?
            };
        }
        // Operand accessors for potentially hostile bytecode: a proto
        // whose operands index outside its tables is a runtime error, not
        // a panic, so static tooling can execute untrusted programs.
        macro_rules! name_at {
            ($i:expr) => {
                proto.names.get($i as usize).ok_or_else(|| {
                    ScriptError::new(format!(
                        "malformed bytecode: name index {} out of range",
                        $i
                    ))
                })?
            };
        }
        // The precomputed atom of name `$i`, falling back to hashing the
        // (already validated) name for protos without an atom table.
        macro_rules! atom_at {
            ($i:expr, $name:expr) => {
                proto
                    .name_atoms
                    .get($i as usize)
                    .copied()
                    .unwrap_or_else(|| name_atom($name))
            };
        }
        macro_rules! split_args {
            ($n:expr) => {{
                let n = $n as usize;
                if stack.len() < n {
                    return Err(ScriptError::new(format!(
                        "malformed bytecode: {n} stacked arguments expected, {} present",
                        stack.len()
                    )));
                }
                let at = stack.len() - n;
                stack.split_off(at)
            }};
        }
        while pc < proto.code.len() {
            self.dispatches += 1;
            // Charge this instruction's tick weight (the interpreter
            // ticks it accounts for). Protos without a tick table — only
            // hand-built ones — charge 1 per instruction so runaway
            // hostile bytecode still trips the watchdog.
            self.fuel
                .charge(u64::from(proto.ticks.get(pc).copied().unwrap_or(1)))?;
            let op = proto.code[pc];
            pc += 1;
            match op {
                Op::Const(i) => {
                    let konst = proto.consts.get(i as usize).ok_or_else(|| {
                        ScriptError::new(format!(
                            "malformed bytecode: constant index {i} out of range"
                        ))
                    })?;
                    stack.push(match konst {
                        Const::Null => Value::Null,
                        Const::Bool(b) => Value::Bool(*b),
                        Const::Number(n) => Value::Number(*n),
                        Const::Str(s) => Value::str(s),
                    });
                }
                Op::GetVar(i) => {
                    let name = name_at!(i);
                    let atom = atom_at!(i, name);
                    let scope = scopes.last().expect("frame scope always present");
                    let value = Scope::lookup_atom(scope, atom)
                        .ok_or_else(|| ScriptError::new(format!("undefined variable `{name}`")))?;
                    stack.push(value);
                }
                Op::SetVar(i) => {
                    let name = name_at!(i);
                    let atom = atom_at!(i, name);
                    let value = pop!();
                    let scope = scopes.last().expect("frame scope always present");
                    if !Scope::assign_atom(scope, atom, value) {
                        return Err(ScriptError::new(format!(
                            "assignment to undeclared variable `{name}`"
                        )));
                    }
                }
                Op::DeclVar(i) => {
                    let name = name_at!(i);
                    let atom = atom_at!(i, name);
                    let value = pop!();
                    let scope = scopes.last().expect("frame scope always present");
                    Scope::declare_atom(scope, atom, value);
                }
                Op::Pop => {
                    pop!();
                }
                Op::Dup => {
                    let top = stack
                        .last()
                        .cloned()
                        .ok_or_else(|| ScriptError::new("stack underflow"))?;
                    stack.push(top);
                }
                Op::PushScope => {
                    let parent = scopes.last().expect("frame scope always present").clone();
                    scopes.push(Scope::child(parent));
                }
                Op::PopScope => {
                    if scopes.len() <= 1 {
                        return Err(ScriptError::new("scope underflow"));
                    }
                    scopes.pop();
                }
                Op::Binary(binop) => {
                    let r = pop!();
                    let l = pop!();
                    stack.push(builtins::binary_op(binop, &l, &r)?);
                }
                Op::Unary(unop) => {
                    let v = pop!();
                    stack.push(match unop {
                        crate::ast::UnaryOp::Neg => match v {
                            Value::Number(n) => Value::Number(-n),
                            other => {
                                return Err(ScriptError::new(format!(
                                    "cannot negate a {}",
                                    other.type_name()
                                )))
                            }
                        },
                        crate::ast::UnaryOp::Not => Value::Bool(!v.is_truthy()),
                    });
                }
                Op::Jump(t) => pc = t as usize,
                Op::JumpIfFalse(t) => {
                    if !pop!().is_truthy() {
                        pc = t as usize;
                    }
                }
                Op::JumpIfFalsePeek(t) => {
                    let falsy = !stack
                        .last()
                        .ok_or_else(|| ScriptError::new("stack underflow"))?
                        .is_truthy();
                    if falsy {
                        pc = t as usize;
                    }
                }
                Op::JumpIfTruePeek(t) => {
                    let truthy = stack
                        .last()
                        .ok_or_else(|| ScriptError::new("stack underflow"))?
                        .is_truthy();
                    if truthy {
                        pc = t as usize;
                    }
                }
                Op::MakeArray(n) => {
                    let items = split_args!(n);
                    stack.push(Value::array(items));
                }
                Op::MakeObject { base, count } => {
                    let values = split_args!(count);
                    let object = Value::object();
                    if let Value::Object(map) = &object {
                        let mut map = map.borrow_mut();
                        for (i, value) in values.into_iter().enumerate() {
                            let key = name_at!(base as usize + i).clone();
                            map.insert(key, value);
                        }
                    }
                    stack.push(object);
                }
                Op::MakeClosure(idx) => {
                    let scope = scopes.last().expect("frame scope always present").clone();
                    stack.push(Value::VmFunction(Rc::new(VmClosure {
                        proto: idx as usize,
                        protos: Arc::clone(&protos),
                        env: scope,
                    })));
                }
                Op::CallName { name, argc } => {
                    let args: Vec<Value> = split_args!(argc);
                    let name_idx = name;
                    let name = name_at!(name_idx);
                    let atom = atom_at!(name_idx, name);
                    let scope = scopes.last().expect("frame scope always present");
                    match Scope::lookup_atom(scope, atom) {
                        Some(callee) => {
                            let result = self.call_function(&callee, &args, host)?;
                            stack.push(result);
                        }
                        None => match host.call(name, &args) {
                            Some(result) => stack.push(result?),
                            None => {
                                return Err(ScriptError::new(format!(
                                    "undefined function `{name}` (line {})",
                                    line_at(pc)
                                )))
                            }
                        },
                    }
                }
                Op::CallValue { argc } => {
                    let args: Vec<Value> = split_args!(argc);
                    let callee = pop!();
                    let result = self.call_function(&callee, &args, host)?;
                    stack.push(result);
                }
                Op::CallMethod { name, argc } => {
                    let args: Vec<Value> = split_args!(argc);
                    let object = pop!();
                    let name = name_at!(name);
                    let result = match &object {
                        Value::Array(items) => builtins::array_method(items, name, &args)?,
                        Value::Str(s) => builtins::string_method(s, name, &args)?,
                        Value::Object(map) => {
                            let method = map.borrow().get(name.as_str()).cloned();
                            match method {
                                Some(f) => self.call_function(&f, &args, host)?,
                                None => {
                                    return Err(ScriptError::new(format!(
                                        "object has no method `{name}` (line {})",
                                        line_at(pc)
                                    )))
                                }
                            }
                        }
                        other => {
                            return Err(ScriptError::new(format!(
                                "{} has no method `{name}` (line {})",
                                other.type_name(),
                                line_at(pc)
                            )))
                        }
                    };
                    stack.push(result);
                }
                Op::CallMath { name, argc } => {
                    let args: Vec<Value> = split_args!(argc);
                    let scope = scopes.last().expect("frame scope always present");
                    if Scope::lookup(scope, "Math").is_some() {
                        return Err(ScriptError::new(
                            "shadowing `Math` is not supported by the bytecode backend",
                        ));
                    }
                    let name = name_at!(name);
                    stack.push(builtins::math_call(&mut self.rng_state, name, &args)?);
                }
                Op::GetMember(i) => {
                    let object = pop!();
                    stack.push(builtins::get_member(&object, name_at!(i))?);
                }
                Op::SetMember(i) => {
                    let object = pop!();
                    let value = pop!();
                    builtins::set_member(&object, name_at!(i), value)?;
                }
                Op::GetIndex => {
                    let index = pop!();
                    let object = pop!();
                    stack.push(builtins::get_index(&object, &index)?);
                }
                Op::SetIndex => {
                    let index = pop!();
                    let object = pop!();
                    let value = pop!();
                    builtins::set_index(&object, &index, value)?;
                }
                Op::Return => {
                    return Ok(pop!());
                }
            }
        }
        Ok(Value::Null)
    }
}

impl Default for Vm {
    fn default() -> Self {
        Vm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoHost;

    fn run(src: &str) -> Vm {
        let mut vm = Vm::new();
        vm.run_source(src, &mut NoHost).unwrap();
        vm
    }

    fn number(vm: &Vm, name: &str) -> f64 {
        vm.global(name).unwrap().as_number().unwrap()
    }

    #[test]
    fn arithmetic() {
        let vm = run("var x = 1 + 2 * 3 - 4 / 2;");
        assert_eq!(number(&vm, "x"), 5.0);
    }

    #[test]
    fn control_flow() {
        let vm = run("var s = 0;
             for (var i = 1; i <= 100; i++) { s += i; }
             var sign = s > 0 ? 'pos' : 'neg';
             var clipped = 0;
             while (true) { clipped = clipped + 1; if (clipped >= 7) { break; } }");
        assert_eq!(number(&vm, "s"), 5050.0);
        assert_eq!(vm.global("sign").unwrap().as_str(), Some("pos"));
        assert_eq!(number(&vm, "clipped"), 7.0);
    }

    #[test]
    fn continue_skips() {
        let vm = run("var sum = 0;
             for (var i = 0; i < 10; i++) { if (i % 2 == 0) { continue; } sum += i; }");
        assert_eq!(number(&vm, "sum"), 25.0);
    }

    #[test]
    fn functions_and_recursion() {
        let vm = run(
            "function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
             var x = fib(15);",
        );
        assert_eq!(number(&vm, "x"), 610.0);
    }

    #[test]
    fn closures_capture() {
        let vm = run(
            "function counter() { var n = 0; return function() { n = n + 1; return n; }; }
             var c = counter();
             c(); c();
             var x = c();",
        );
        assert_eq!(number(&vm, "x"), 3.0);
    }

    #[test]
    fn arrays_objects_strings() {
        let vm = run("var a = [1, 2]; a.push(3); a[0] = 10;
             var o = { k: 4 }; o.j = o.k + a.length;
             var s = 'Hello'.toUpperCase();
             var n = a[0] + o.j;");
        assert_eq!(number(&vm, "n"), 17.0);
        assert_eq!(vm.global("s").unwrap().as_str(), Some("HELLO"));
    }

    #[test]
    fn math_namespace() {
        let vm = run("var x = Math.floor(3.9) + Math.pow(2, 5);");
        assert_eq!(number(&vm, "x"), 35.0);
    }

    #[test]
    fn short_circuit() {
        let vm = run("var a = null || 5; var b = 0 && boom(); var c = 1 && 2;");
        assert_eq!(number(&vm, "a"), 5.0);
        assert_eq!(number(&vm, "b"), 0.0);
        assert_eq!(number(&vm, "c"), 2.0);
    }

    #[test]
    fn block_scoping_matches_interpreter() {
        let vm = run("var x = 1; { var x = 2; } var y = x;");
        assert_eq!(number(&vm, "y"), 1.0);
    }

    #[test]
    fn break_inside_nested_block_unwinds_scopes() {
        let vm = run("var out = 0;
             for (var i = 0; i < 5; i++) {
                 { var tmp = i * 10; if (i == 2) { out = tmp; break; } }
             }");
        assert_eq!(number(&vm, "out"), 20.0);
    }

    #[test]
    fn charged_ops_match_the_interpreter_exactly() {
        // The tick-parity contract: for any successful execution the VM
        // charges exactly what the tree-walker ticks, so the engine's
        // cost model is backend-independent.
        let cases = [
            "var x = 1 + 2 * 3 - 4 / 2;",
            "var s = 0; for (var i = 1; i <= 50; i++) { s += i; }",
            "var i = 0; while (i < 10) { i = i + 1; }",
            "function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
             var x = fib(10);",
            "var a = [1, 2]; a.push(3); a[0] = 10; var n = a.length;",
            "var o = { k: 1, f: function() { return 2; } }; var x = o.f() + o.k;",
            "var s = 'abc'.toUpperCase() + 'd';",
            "var x = Math.floor(3.9) + Math.min(1, 2);",
            "var t = 1 < 2 ? 'y' : 'n'; var u = null || 5; var v = 1 && 2;",
            "if (true) { var a = 1; } else { var b = 2; }",
            "while (0) { boom(); } var after = 1;",
            "var sum = 0;
             for (var i = 0; i < 10; i++) { if (i % 2 == 0) { continue; } sum += i; }",
            "var out = 0;
             for (var i = 0; i < 5; i++) { { var tmp = i; if (i == 2) { out = tmp; break; } } }",
            "var empty = 0; { } { var inner = 1; empty = inner; }",
            "var r = Math.random() + Math.random();",
            "var x = -(2 + 3); var y = !false;",
        ];
        for src in cases {
            let mut vm = Vm::new();
            vm.run_source(src, &mut NoHost).unwrap();
            let mut interp = crate::Interpreter::new();
            interp
                .run(&crate::parse_program(src).unwrap(), &mut NoHost)
                .unwrap();
            assert_eq!(
                vm.ops(),
                interp.ops(),
                "charged ops diverge from the oracle for {src:?}"
            );
        }
    }

    #[test]
    fn folding_preserves_results_and_ops_with_fewer_dispatches() {
        let src = "var x = 1 + 2 * 3;
             var y = 'a' + 'b' + 'c';
             var z = 2 < 3 ? 10 : 20;
             if (1 + 1 == 2) { var w = x + z; } else { var bad = 0; }
             var s = 0;
             for (var i = 0; i < 4 * 5; i++) { s += 2 * 3; }";
        let program = crate::parse_program(src).unwrap();
        let folded = crate::compiler::compile(&program).unwrap();
        let unfolded = crate::compiler::compile_with(
            &program,
            crate::compiler::CompileOptions { fold: false },
        )
        .unwrap();
        let mut vm_f = Vm::new();
        vm_f.run(&folded, &mut NoHost).unwrap();
        let mut vm_u = Vm::new();
        vm_u.run(&unfolded, &mut NoHost).unwrap();
        for g in ["x", "y", "z", "w", "s"] {
            assert_eq!(vm_f.global(g), vm_u.global(g), "folding changed `{g}`");
        }
        assert_eq!(
            vm_f.ops(),
            vm_u.ops(),
            "folding must not change charged ops"
        );
        assert!(
            vm_f.dispatches() < vm_u.dispatches(),
            "folding must execute strictly fewer instructions ({} vs {})",
            vm_f.dispatches(),
            vm_u.dispatches()
        );
        assert!(folded.protos.iter().map(|p| p.folded).sum::<u32>() >= 1);
    }

    #[test]
    fn reset_ops_clears_both_counters() {
        let mut vm = run("var x = 1 + 2;");
        assert!(vm.ops() > 0);
        assert!(vm.dispatches() > 0);
        vm.reset_ops();
        assert_eq!(vm.ops(), 0);
        assert_eq!(vm.dispatches(), 0);
    }

    #[test]
    fn call_errors_carry_source_lines_like_the_interpreter() {
        let src = "var x = 1;\nmissing(x);\n";
        let mut vm = Vm::new();
        let vm_err = vm.run_source(src, &mut NoHost).unwrap_err();
        let mut interp = crate::Interpreter::new();
        let interp_err = interp
            .run(&crate::parse_program(src).unwrap(), &mut NoHost)
            .unwrap_err();
        assert_eq!(vm_err.to_string(), interp_err.to_string());
        assert!(vm_err.to_string().contains("(line 2)"));

        let src = "var o = { a: 1 };\nvar y = o.nope();\n";
        let mut vm = Vm::new();
        let vm_err = vm.run_source(src, &mut NoHost).unwrap_err();
        let mut interp = crate::Interpreter::new();
        let interp_err = interp
            .run(&crate::parse_program(src).unwrap(), &mut NoHost)
            .unwrap_err();
        assert_eq!(vm_err.to_string(), interp_err.to_string());
        assert!(vm_err.to_string().contains("(line 2)"));
    }

    #[test]
    fn op_limit_stops_loops() {
        let mut vm = Vm::new().with_op_limit(5_000);
        let err = vm.run_source("while (true) { }", &mut NoHost).unwrap_err();
        assert!(err.to_string().contains("op limit"));
        assert!(err.is_op_limit(), "VM fuel exhaustion must be typed");
    }

    #[test]
    fn vm_fuel_is_retunable_and_matches_interpreter_classification() {
        let mut vm = Vm::new();
        vm.set_op_limit(800);
        let err = vm.run_source("while (true) { }", &mut NoHost).unwrap_err();
        assert!(err.is_op_limit());
        assert!(vm.ops() <= 801, "must stop right at the ceiling");
        let mut vm = Vm::new();
        let err = vm.run_source("var x = nope;", &mut NoHost).unwrap_err();
        assert!(!err.is_op_limit(), "runtime errors are not fuel exhaustion");
    }

    #[test]
    fn undefined_variable_errors() {
        let mut vm = Vm::new();
        let err = vm.run_source("var x = nope;", &mut NoHost).unwrap_err();
        assert!(err.to_string().contains("undefined variable"));
    }

    #[test]
    fn host_calls_work() {
        struct H(Vec<f64>);
        impl Host for H {
            fn call(&mut self, name: &str, args: &[Value]) -> Option<Result<Value, ScriptError>> {
                (name == "work").then(|| {
                    self.0.push(args[0].as_number().unwrap_or(0.0));
                    Ok(Value::Null)
                })
            }
        }
        let mut vm = Vm::new();
        let mut host = H(Vec::new());
        vm.run_source("work(42); work(7);", &mut host).unwrap();
        assert_eq!(host.0, vec![42.0, 7.0]);
    }

    #[test]
    fn external_call_of_vm_function() {
        let mut vm = Vm::new();
        vm.run_source("function double(x) { return x * 2; }", &mut NoHost)
            .unwrap();
        let f = vm.global("double").unwrap();
        let result = vm
            .call_function(&f, &[Value::Number(21.0)], &mut NoHost)
            .unwrap();
        assert_eq!(result, Value::Number(42.0));
    }

    #[test]
    fn malformed_bytecode_errors_instead_of_panicking() {
        // Hand-built hostile protos: every operand indexes outside its
        // table or pops more than the stack holds. The VM must fail with
        // a typed error so static tooling can execute untrusted bytecode.
        let cases: Vec<Vec<Op>> = vec![
            vec![Op::Const(7)],
            vec![Op::GetVar(3)],
            vec![Op::SetVar(3)],
            vec![Op::DeclVar(3)],
            vec![Op::Pop],
            vec![Op::Dup],
            vec![Op::PopScope],
            vec![Op::MakeArray(4)],
            vec![Op::MakeObject { base: 9, count: 2 }],
            vec![Op::MakeClosure(5), Op::CallValue { argc: 0 }],
            vec![Op::CallName { name: 8, argc: 3 }],
            vec![Op::CallValue { argc: 2 }],
            vec![Op::CallMethod { name: 8, argc: 1 }],
            vec![Op::CallMath { name: 8, argc: 1 }],
            vec![Op::GetMember(6)],
            vec![Op::SetMember(6)],
            vec![Op::Return],
        ];
        for code in cases {
            let debug = format!("{code:?}");
            let proto = Proto {
                code,
                ..Proto::default()
            };
            let program = CompiledProgram {
                protos: Arc::new(vec![proto]),
                main: 0,
            };
            let mut vm = Vm::new();
            assert!(
                vm.run(&program, &mut NoHost).is_err(),
                "hostile program {debug} should error"
            );
        }
    }

    #[test]
    fn tickless_protos_charge_one_per_instruction_and_still_trip() {
        // A hand-built proto without a tick table must not get free
        // execution: the default weight is 1, so an infinite jump loop
        // trips the watchdog.
        let proto = Proto {
            code: vec![Op::Jump(0)],
            ..Proto::default()
        };
        let program = CompiledProgram {
            protos: Arc::new(vec![proto]),
            main: 0,
        };
        let mut vm = Vm::new().with_op_limit(1_000);
        let err = vm.run(&program, &mut NoHost).unwrap_err();
        assert!(err.is_op_limit());
    }

    #[test]
    fn atomless_protos_fall_back_to_hashing_names() {
        // Hand-built proto with names but no atom table: declare + read
        // a variable. The VM must hash the names on the fly and agree
        // with the string-keyed accessors.
        let proto = Proto {
            code: vec![Op::Const(0), Op::DeclVar(0), Op::GetVar(0), Op::Return],
            consts: vec![Const::Number(7.0)],
            names: vec!["x".to_string()],
            ..Proto::default()
        };
        let program = CompiledProgram {
            protos: Arc::new(vec![proto]),
            main: 0,
        };
        let mut vm = Vm::new();
        vm.run(&program, &mut NoHost).unwrap();
        assert_eq!(vm.global("x"), Some(Value::Number(7.0)));
    }

    #[test]
    fn out_of_range_main_proto_errors() {
        let program = CompiledProgram {
            protos: Arc::new(Vec::new()),
            main: 0,
        };
        let mut vm = Vm::new();
        let err = vm.run(&program, &mut NoHost).unwrap_err();
        assert!(err.to_string().contains("proto index"));
    }

    #[test]
    fn jump_past_end_terminates_cleanly() {
        let proto = Proto {
            code: vec![Op::Jump(1000)],
            ..Proto::default()
        };
        let program = CompiledProgram {
            protos: Arc::new(vec![proto]),
            main: 0,
        };
        let mut vm = Vm::new();
        assert!(vm.run(&program, &mut NoHost).is_ok());
    }

    #[test]
    fn math_random_matches_interpreter_sequence() {
        let mut vm = Vm::new();
        vm.run_source("var a = Math.random(); var b = Math.random();", &mut NoHost)
            .unwrap();
        let mut interp = crate::Interpreter::new();
        interp
            .run(
                &crate::parse_program("var a = Math.random(); var b = Math.random();").unwrap(),
                &mut NoHost,
            )
            .unwrap();
        assert_eq!(vm.global("a"), interp.global("a"));
        assert_eq!(vm.global("b"), interp.global("b"));
    }
}
