//! The shared fuel (op budget) machinery behind both backends.
//!
//! The watchdog contract — count evaluation work, trip a *typed*
//! `op_limit` error at the ceiling — used to be implemented twice, once
//! in the tree-walking interpreter and once in the bytecode VM. Both now
//! lower onto this one [`Fuel`] type, so `RunBudget.max_callback_ops`
//! has exactly one implementation to configure and the fleet supervisor
//! sees one error class regardless of backend.
//!
//! The unit of fuel is one *interpreter tick*: one visited statement or
//! expression node. The VM charges per-instruction weights from
//! [`crate::compiler::Proto::ticks`] that sum to exactly the same count
//! the tree-walker would have ticked, so a given budget means the same
//! amount of script work on either backend and the engine's cost model
//! (which converts ops to cycles) is backend-independent.

use crate::interp::ScriptError;

/// Default maximum number of evaluation steps per `run`/`call` before an
/// infinite-loop error is raised.
pub const DEFAULT_OP_LIMIT: u64 = 50_000_000;

/// An op budget: the count of evaluation steps charged so far plus the
/// ceiling that trips the watchdog.
#[derive(Debug, Clone, Copy)]
pub struct Fuel {
    used: u64,
    limit: u64,
}

impl Fuel {
    /// Creates a budget with the given ceiling.
    pub fn new(limit: u64) -> Self {
        Fuel { used: 0, limit }
    }

    /// Charges one evaluation step.
    ///
    /// # Errors
    ///
    /// Returns the typed fuel-exhaustion error when the ceiling is
    /// exceeded.
    pub fn tick(&mut self) -> Result<(), ScriptError> {
        self.charge(1)
    }

    /// Charges `weight` evaluation steps at once (the VM charges a whole
    /// folded subtree's tick count on one instruction). A zero weight is
    /// free and never trips the ceiling.
    ///
    /// # Errors
    ///
    /// Returns the typed fuel-exhaustion error when the ceiling is
    /// exceeded.
    pub fn charge(&mut self, weight: u64) -> Result<(), ScriptError> {
        if weight == 0 {
            return Ok(());
        }
        self.used += weight;
        if self.used > self.limit {
            return Err(ScriptError::op_limit(format!(
                "op limit exceeded after {} ops (possible infinite loop)",
                self.limit
            )));
        }
        Ok(())
    }

    /// Evaluation steps charged so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The current ceiling.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Retunes the ceiling on a live budget (the engine lowers
    /// `RunBudget.max_callback_ops` onto this).
    pub fn set_limit(&mut self, limit: u64) {
        self.limit = limit;
    }

    /// Resets the counter (the engine does this per callback so each
    /// callback's cost is measured independently).
    pub fn reset(&mut self) {
        self.used = 0;
    }
}

impl Default for Fuel {
    fn default() -> Self {
        Fuel::new(DEFAULT_OP_LIMIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_exactly_past_the_ceiling() {
        let mut fuel = Fuel::new(3);
        assert!(fuel.tick().is_ok());
        assert!(fuel.charge(2).is_ok());
        let err = fuel.tick().unwrap_err();
        assert!(err.is_op_limit());
        assert!(err.to_string().contains("op limit"));
        assert_eq!(fuel.used(), 4);
    }

    #[test]
    fn zero_weight_is_free() {
        let mut fuel = Fuel::new(0);
        assert!(fuel.charge(0).is_ok());
        assert!(fuel.tick().is_err());
    }

    #[test]
    fn reset_and_retune() {
        let mut fuel = Fuel::new(2);
        fuel.charge(2).unwrap();
        fuel.reset();
        assert_eq!(fuel.used(), 0);
        fuel.set_limit(1);
        assert_eq!(fuel.limit(), 1);
        assert!(fuel.tick().is_ok());
        assert!(fuel.tick().is_err());
    }
}
