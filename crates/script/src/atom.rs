//! Interned name atoms for environment lookups.
//!
//! Variable names are hashed once — at compile time for the bytecode
//! backend, per access for the tree-walking oracle — into stable 64-bit
//! FNV-1a atoms, the same scheme (and constants) the dom/css layers use
//! for tag/id/class style atoms. Scope chains then key their bindings by
//! atom instead of by owned `String`, so a `GetVar` in a hot callback is
//! an integer probe rather than a string hash + compare per scope level.
//!
//! Like the style atoms, collisions are accepted as a design trade: a
//! 64-bit FNV over the handful of identifiers a handler uses makes an
//! accidental collision astronomically unlikely, and both backends use
//! the same atomization so any collision would at least be *consistent*
//! across the differential suite.

/// 64-bit FNV-1a over `name` with a one-byte kind prefix (`b'v'` for
/// variables), mirroring `greenweb_dom`'s `tag_atom`/`id_atom`/
/// `class_atom` so script names live in the same atom namespace without
/// colliding with any style atom.
pub fn name_atom(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in std::iter::once(b'v').chain(name.bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_are_stable_and_distinct() {
        assert_eq!(name_atom("x"), name_atom("x"));
        assert_ne!(name_atom("x"), name_atom("y"));
        assert_ne!(name_atom(""), name_atom("x"));
    }

    #[test]
    fn kind_prefix_separates_from_style_atoms() {
        // `greenweb_dom::tag_atom("div")` prefixes b't'; the variable
        // atom of the same string must differ because of the b'v' prefix.
        let mut tag: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in std::iter::once(b't').chain("div".bytes()) {
            tag ^= u64::from(byte);
            tag = tag.wrapping_mul(0x0100_0000_01b3);
        }
        assert_ne!(name_atom("div"), tag);
    }
}
