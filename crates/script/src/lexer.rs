//! Lexer for the GreenWeb scripting language.

use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A numeric literal.
    Number(f64),
    /// A string literal (quotes removed, escapes resolved).
    Str(String),
    /// An identifier.
    Ident(String),
    /// A reserved keyword (`var`, `function`, `if`, …).
    Keyword(Keyword),
    /// A punctuator or operator (`+`, `==`, `{`, …).
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the keywords are their own documentation
pub enum Keyword {
    Var,
    Let,
    Function,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    True,
    False,
    Null,
}

impl Keyword {
    fn from_ident(word: &str) -> Option<Keyword> {
        Some(match word {
            "var" => Keyword::Var,
            "let" => Keyword::Let,
            "function" => Keyword::Function,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "null" => Keyword::Null,
            _ => return None,
        })
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = match self {
            Keyword::Var => "var",
            Keyword::Let => "let",
            Keyword::Function => "function",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::Null => "null",
        };
        f.write_str(word)
    }
}

/// A token with its source line (1-based), for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(name) => write!(f, "{name}"),
            TokenKind::Keyword(kw) => write!(f, "{kw}"),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Error produced by [`lex`].
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    message: String,
    /// 1-based source line of the error.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-character punctuators, longest first so maximal munch works.
const PUNCTUATORS: &[&str] = &[
    "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--", "(", ")",
    "{", "}", "[", "]", ";", ",", ".", ":", "?", "+", "-", "*", "/", "%", "<", ">", "=", "!",
];

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, malformed numbers, or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            i += 2;
            loop {
                if i + 1 >= chars.len() {
                    return Err(LexError {
                        message: "unterminated block comment".into(),
                        line: start_line,
                    });
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                if chars[i] == '*' && chars[i + 1] == '/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // Strings.
        if c == '"' || c == '\'' {
            let quote = c;
            let start_line = line;
            i += 1;
            let mut s = String::new();
            loop {
                match chars.get(i) {
                    Some(&ch) if ch == quote => {
                        i += 1;
                        break;
                    }
                    Some('\\') => {
                        let escaped = chars.get(i + 1).ok_or_else(|| LexError {
                            message: "unterminated string".into(),
                            line: start_line,
                        })?;
                        s.push(match escaped {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => *other,
                        });
                        i += 2;
                    }
                    Some('\n') | None => {
                        return Err(LexError {
                            message: "unterminated string".into(),
                            line: start_line,
                        })
                    }
                    Some(&ch) => {
                        s.push(ch);
                        i += 1;
                    }
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str(s),
                line: start_line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit)) {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
            }
            // Scientific notation.
            if matches!(chars.get(i), Some('e' | 'E')) {
                let mut j = i + 1;
                if matches!(chars.get(j), Some('+' | '-')) {
                    j += 1;
                }
                if chars.get(j).is_some_and(char::is_ascii_digit) {
                    i = j;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text: String = chars[start..i].iter().collect();
            let number: f64 = text.parse().map_err(|_| LexError {
                message: format!("invalid number `{text}`"),
                line,
            })?;
            tokens.push(Token {
                kind: TokenKind::Number(number),
                line,
            });
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
            {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            let kind = match Keyword::from_ident(&word) {
                Some(kw) => TokenKind::Keyword(kw),
                None => TokenKind::Ident(word),
            };
            tokens.push(Token { kind, line });
            continue;
        }
        // Punctuators (maximal munch).
        let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
        let punct = PUNCTUATORS.iter().find(|p| rest.starts_with(**p));
        match punct {
            Some(p) => {
                tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                });
                i += p.len();
            }
            None => {
                return Err(LexError {
                    message: format!("unexpected character `{c}`"),
                    line,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_var_declaration() {
        assert_eq!(
            kinds("var x = 1;"),
            vec![
                TokenKind::Keyword(Keyword::Var),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Number(1.0),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            kinds("a === b != c <= d && e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("==="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("!="),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("<="),
                TokenKind::Ident("d".into()),
                TokenKind::Punct("&&"),
                TokenKind::Ident("e".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("3.5"), vec![TokenKind::Number(3.5), TokenKind::Eof]);
        assert_eq!(
            kinds("1e3"),
            vec![TokenKind::Number(1000.0), TokenKind::Eof]
        );
        assert_eq!(
            kinds("2.5e-1"),
            vec![TokenKind::Number(0.25), TokenKind::Eof]
        );
    }

    #[test]
    fn member_access_after_number() {
        // `1.toString` style is not needed; but `x.y` must lex as ident . ident.
        assert_eq!(
            kinds("a.b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("."),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\n\"b\"""#),
            vec![TokenKind::Str("a\n\"b\"".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_skipped_lines_counted() {
        let tokens = lex("// line comment\n/* block\ncomment */ x").unwrap();
        assert_eq!(tokens[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(tokens[0].line, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("'abc").unwrap_err();
        assert!(err.to_string().contains("unterminated string"));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let err = lex("a # b").unwrap_err();
        assert!(err.to_string().contains('#'));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("iffy if"),
            vec![
                TokenKind::Ident("iffy".into()),
                TokenKind::Keyword(Keyword::If),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let tokens = lex("a\nb\nc").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[2].line, 3);
    }
}
