//! Deterministic script-pipeline counters.
//!
//! Pure counters — no wall-clock — in the mold of the style system's
//! `StyleStats`, so the script bench and the VM-off parity gate can diff
//! them byte-for-byte. The engine fills these in as it loads and runs an
//! app; `ops` is backend-independent by the tick-parity contract, while
//! `dispatches`/`fold_wins` are VM-path-only evidence that compilation
//! actually happened (and paid off).

/// Counters from the script execution pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScriptStats {
    /// Setup programs executed at app load.
    pub programs: u64,
    /// Bytecode compilations performed by the engine (load-time compiles
    /// plus handler recompiles). Independent of event count on the VM
    /// path: each program/handler compiles at most once per app load.
    pub compiles: u64,
    /// Setup programs served from the app's precompiled table (compiled
    /// once at `App::build`, validated by source fingerprint).
    pub precompiled_hits: u64,
    /// Distinct handler bodies entered in the shared `HandlerCache`.
    pub handlers: u64,
    /// Handler bodies recompiled from tree-walker AST closures — the
    /// compile-twice debt. Zero on the VM path.
    pub handler_recompiles: u64,
    /// Callback invocations dispatched by the engine.
    pub callbacks: u64,
    /// Evaluation steps charged (backend-independent: VM tick weights
    /// sum to exactly the tree-walker's count).
    pub ops: u64,
    /// Raw VM instructions executed (zero on the tree-walk oracle; the
    /// gap to `ops` is the constant-folding win at run time).
    pub dispatches: u64,
    /// Constant-folding wins across every proto the engine loaded.
    pub fold_wins: u64,
}

impl ScriptStats {
    /// Field-wise sum of two counter sets.
    pub fn merge(&self, other: &ScriptStats) -> ScriptStats {
        ScriptStats {
            programs: self.programs + other.programs,
            compiles: self.compiles + other.compiles,
            precompiled_hits: self.precompiled_hits + other.precompiled_hits,
            handlers: self.handlers + other.handlers,
            handler_recompiles: self.handler_recompiles + other.handler_recompiles,
            callbacks: self.callbacks + other.callbacks,
            ops: self.ops + other.ops,
            dispatches: self.dispatches + other.dispatches,
            fold_wins: self.fold_wins + other.fold_wins,
        }
    }

    /// Field-wise difference `self - earlier` (saturating), for
    /// before/after deltas around a measured region.
    pub fn delta_since(&self, earlier: &ScriptStats) -> ScriptStats {
        ScriptStats {
            programs: self.programs.saturating_sub(earlier.programs),
            compiles: self.compiles.saturating_sub(earlier.compiles),
            precompiled_hits: self
                .precompiled_hits
                .saturating_sub(earlier.precompiled_hits),
            handlers: self.handlers.saturating_sub(earlier.handlers),
            handler_recompiles: self
                .handler_recompiles
                .saturating_sub(earlier.handler_recompiles),
            callbacks: self.callbacks.saturating_sub(earlier.callbacks),
            ops: self.ops.saturating_sub(earlier.ops),
            dispatches: self.dispatches.saturating_sub(earlier.dispatches),
            fold_wins: self.fold_wins.saturating_sub(earlier.fold_wins),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_delta_are_field_wise() {
        let a = ScriptStats {
            programs: 1,
            compiles: 2,
            precompiled_hits: 1,
            handlers: 3,
            handler_recompiles: 0,
            callbacks: 10,
            ops: 100,
            dispatches: 80,
            fold_wins: 4,
        };
        let b = a.merge(&a);
        assert_eq!(b.ops, 200);
        assert_eq!(b.dispatches, 160);
        assert_eq!(b.delta_since(&a), a);
        assert_eq!(a.delta_since(&b), ScriptStats::default());
    }
}
