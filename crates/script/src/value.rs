//! Runtime values.

use crate::ast::Stmt;
use crate::compiler::Proto;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A closure compiled for the bytecode VM: a prototype index paired with
/// the captured environment (see [`crate::vm::Vm`]).
///
/// The prototype table is `Arc`-shared so the closure executes the same
/// compiled artifact the (Send) app/analysis layers hold — the closure
/// itself stays single-threaded via its `Rc`-based environment.
#[derive(Debug)]
pub struct VmClosure {
    /// Index into the program's prototype table.
    pub proto: usize,
    /// The prototype table the index refers to.
    pub protos: Arc<Vec<Proto>>,
    /// Captured lexical environment.
    pub env: crate::interp::ScopeRef,
}

/// A closure: a function body paired with its captured environment.
#[derive(Debug)]
pub struct Closure {
    /// Function name (empty for anonymous functions), for diagnostics.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Rc<Vec<Stmt>>,
    /// Captured lexical environment.
    pub env: crate::interp::ScopeRef,
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit float (the language's only numeric type, like JS).
    Number(f64),
    /// An immutable string.
    Str(Rc<str>),
    /// A mutable, shared array.
    Array(Rc<RefCell<Vec<Value>>>),
    /// A mutable, shared string-keyed object.
    Object(Rc<RefCell<HashMap<String, Value>>>),
    /// A function closure (tree-walking backend).
    Function(Rc<Closure>),
    /// A function closure (bytecode backend).
    VmFunction(Rc<VmClosure>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Creates an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(items)))
    }

    /// Creates an empty object value.
    pub fn object() -> Value {
        Value::Object(Rc::new(RefCell::new(HashMap::new())))
    }

    /// JS-style truthiness.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Array(_) | Value::Object(_) | Value::Function(_) | Value::VmFunction(_) => true,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
            Value::Function(_) | Value::VmFunction(_) => "function",
        }
    }

    /// Structural equality, JS `===`-like (arrays/objects/functions compare
    /// by identity).
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => Rc::ptr_eq(a, b),
            (Value::Object(a), Value::Object(b)) => Rc::ptr_eq(a, b),
            (Value::Function(a), Value::Function(b)) => Rc::ptr_eq(a, b),
            (Value::VmFunction(a), Value::VmFunction(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.strict_eq(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                let map = map.borrow();
                let mut keys: Vec<_> = map.keys().collect();
                keys.sort();
                write!(f, "{{")?;
                for (i, key) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{key}: {}", map[*key])?;
                }
                write!(f, "}}")
            }
            Value::Function(c) => {
                if c.name.is_empty() {
                    write!(f, "<function>")
                } else {
                    write!(f, "<function {}>", c.name)
                }
            }
            Value::VmFunction(c) => {
                let name = &c.protos[c.proto].name;
                if name.is_empty() {
                    write!(f, "<function>")
                } else {
                    write!(f, "<function {name}>")
                }
            }
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Number(0.0).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(Value::Number(1.0).is_truthy());
        assert!(Value::str("x").is_truthy());
        assert!(Value::array(vec![]).is_truthy());
    }

    #[test]
    fn strict_eq_by_identity_for_references() {
        let a = Value::array(vec![Value::Number(1.0)]);
        let b = Value::array(vec![Value::Number(1.0)]);
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(3.5).to_string(), "3.5");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(
            Value::array(vec![Value::Number(1.0), Value::Bool(true)]).to_string(),
            "[1, true]"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(2.0), Value::Number(2.0));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::str("x"));
    }
}
