//! Recursive-descent / Pratt parser for the GreenWeb scripting language.

use crate::ast::{BinaryOp, Expr, Program, Stmt, Target, UnaryOp};
use crate::lexer::{lex, Keyword, Token, TokenKind};
use std::fmt;
use std::rc::Rc;

/// Error produced by [`parse_program`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    message: String,
    /// 1-based source line.
    pub line: u32,
}

impl ParseError {
    fn new(message: impl Into<String>, line: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete program.
///
/// # Errors
///
/// Returns [`ParseError`] (or a lex error converted into one) on invalid
/// syntax.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source).map_err(|e| ParseError::new(e.to_string(), e.line))?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut body = Vec::new();
    while !parser.at_eof() {
        body.push(parser.statement()?);
    }
    Ok(Program { body })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected `{p}`, found `{}`", self.peek()),
                self.line(),
            ))
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if *k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            TokenKind::Ident(name) => Ok(name),
            other => Err(ParseError::new(
                format!("expected identifier, found `{other}`"),
                self.line(),
            )),
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Var) | TokenKind::Keyword(Keyword::Let) => {
                self.advance();
                let name = self.expect_ident()?;
                let init = if self.eat_punct("=") {
                    Some(self.expression()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                Ok(Stmt::VarDecl { name, init, line })
            }
            TokenKind::Keyword(Keyword::Function) => {
                self.advance();
                let name = self.expect_ident()?;
                let params = self.param_list()?;
                let body = self.block()?;
                Ok(Stmt::FunctionDecl {
                    name,
                    params,
                    body: Rc::new(body),
                    line,
                })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.advance();
                self.expect_punct("(")?;
                let cond = self.expression()?;
                self.expect_punct(")")?;
                let then_branch = self.block_or_single()?;
                let else_branch = if self.eat_keyword(Keyword::Else) {
                    if matches!(self.peek(), TokenKind::Keyword(Keyword::If)) {
                        vec![self.statement()?]
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.advance();
                self.expect_punct("(")?;
                let cond = self.expression()?;
                self.expect_punct(")")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.advance();
                self.expect_punct("(")?;
                let init = if self.eat_punct(";") {
                    None
                } else {
                    // The init is a var declaration or expression statement;
                    // both consume their trailing `;`.
                    Some(Box::new(self.statement()?))
                };
                let cond = if matches!(self.peek(), TokenKind::Punct(";")) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(";")?;
                let update = if matches!(self.peek(), TokenKind::Punct(")")) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(")")?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.advance();
                let value = if matches!(self.peek(), TokenKind::Punct(";")) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(";")?;
                Ok(Stmt::Return(value))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.advance();
                self.expect_punct(";")?;
                Ok(Stmt::Break)
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.advance();
                self.expect_punct(";")?;
                Ok(Stmt::Continue)
            }
            TokenKind::Punct("{") => Ok(Stmt::Block(self.block()?)),
            _ => {
                let expr = self.expression()?;
                self.expect_punct(";")?;
                Ok(Stmt::Expr(expr))
            }
        }
    }

    fn param_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.expect_ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(params)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(ParseError::new("unterminated block", self.line()));
            }
            body.push(self.statement()?);
        }
        Ok(body)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if matches!(self.peek(), TokenKind::Punct("{")) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.conditional()?;
        let compound = match self.peek() {
            TokenKind::Punct("=") => None,
            TokenKind::Punct("+=") => Some(BinaryOp::Add),
            TokenKind::Punct("-=") => Some(BinaryOp::Sub),
            TokenKind::Punct("*=") => Some(BinaryOp::Mul),
            TokenKind::Punct("/=") => Some(BinaryOp::Div),
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.advance();
        let rhs = self.assignment()?;
        let target = expr_to_target(&lhs)
            .ok_or_else(|| ParseError::new("invalid assignment target", line))?;
        let value = match compound {
            None => rhs,
            Some(op) => Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        };
        Ok(Expr::Assign {
            target,
            value: Box::new(value),
        })
    }

    fn conditional(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then_value = self.assignment()?;
            self.expect_punct(":")?;
            let else_value = self.assignment()?;
            Ok(Expr::Conditional {
                cond: Box::new(cond),
                then_value: Box::new(then_value),
                else_value: Box::new(else_value),
            })
        } else {
            Ok(cond)
        }
    }

    /// Pratt loop over binary operators at or above `min_prec`.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Punct("||") => (BinaryOp::Or, 1),
                TokenKind::Punct("&&") => (BinaryOp::And, 2),
                TokenKind::Punct("==") | TokenKind::Punct("===") => (BinaryOp::Eq, 3),
                TokenKind::Punct("!=") | TokenKind::Punct("!==") => (BinaryOp::Ne, 3),
                TokenKind::Punct("<") => (BinaryOp::Lt, 4),
                TokenKind::Punct("<=") => (BinaryOp::Le, 4),
                TokenKind::Punct(">") => (BinaryOp::Gt, 4),
                TokenKind::Punct(">=") => (BinaryOp::Ge, 4),
                TokenKind::Punct("+") => (BinaryOp::Add, 5),
                TokenKind::Punct("-") => (BinaryOp::Sub, 5),
                TokenKind::Punct("*") => (BinaryOp::Mul, 6),
                TokenKind::Punct("/") => (BinaryOp::Div, 6),
                TokenKind::Punct("%") => (BinaryOp::Rem, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.advance();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(self.unary()?),
            });
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(self.unary()?),
            });
        }
        // Prefix ++/-- desugar to compound assignment.
        if self.eat_punct("++") {
            let operand = self.unary()?;
            return self.desugar_incdec(operand, BinaryOp::Add);
        }
        if self.eat_punct("--") {
            let operand = self.unary()?;
            return self.desugar_incdec(operand, BinaryOp::Sub);
        }
        self.postfix()
    }

    fn desugar_incdec(&mut self, operand: Expr, op: BinaryOp) -> Result<Expr, ParseError> {
        let target = expr_to_target(&operand)
            .ok_or_else(|| ParseError::new("invalid increment target", self.line()))?;
        Ok(Expr::Assign {
            target,
            value: Box::new(Expr::Binary {
                op,
                lhs: Box::new(operand),
                rhs: Box::new(Expr::Number(1.0)),
            }),
        })
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            if self.eat_punct("(") {
                let line = self.line();
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.assignment()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                expr = Expr::Call {
                    callee: Box::new(expr),
                    args,
                    line,
                };
            } else if self.eat_punct(".") {
                let property = self.expect_ident()?;
                expr = Expr::Member {
                    object: Box::new(expr),
                    property,
                };
            } else if self.eat_punct("[") {
                let index = self.expression()?;
                self.expect_punct("]")?;
                expr = Expr::Index {
                    object: Box::new(expr),
                    index: Box::new(index),
                };
            } else if matches!(self.peek(), TokenKind::Punct("++")) {
                // Postfix increment: value semantics are not needed by the
                // workloads, so treat like prefix.
                self.advance();
                return self.desugar_incdec(expr, BinaryOp::Add);
            } else if matches!(self.peek(), TokenKind::Punct("--")) {
                self.advance();
                return self.desugar_incdec(expr, BinaryOp::Sub);
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.advance() {
            TokenKind::Number(n) => Ok(Expr::Number(n)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::Keyword(Keyword::True) => Ok(Expr::Bool(true)),
            TokenKind::Keyword(Keyword::False) => Ok(Expr::Bool(false)),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::Null),
            TokenKind::Ident(name) => Ok(Expr::Var(name)),
            TokenKind::Keyword(Keyword::Function) => {
                let params = self.param_list()?;
                let body = self.block()?;
                Ok(Expr::Function {
                    params,
                    body: Rc::new(body),
                })
            }
            TokenKind::Punct("(") => {
                let expr = self.expression()?;
                self.expect_punct(")")?;
                Ok(expr)
            }
            TokenKind::Punct("[") => {
                let mut items = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        items.push(self.assignment()?);
                        if self.eat_punct("]") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Array(items))
            }
            TokenKind::Punct("{") => {
                let mut entries = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        let key = match self.advance() {
                            TokenKind::Ident(name) => name,
                            TokenKind::Str(s) => s,
                            other => {
                                return Err(ParseError::new(
                                    format!("expected object key, found `{other}`"),
                                    line,
                                ))
                            }
                        };
                        self.expect_punct(":")?;
                        entries.push((key, self.assignment()?));
                        if self.eat_punct("}") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Object(entries))
            }
            other => Err(ParseError::new(format!("unexpected token `{other}`"), line)),
        }
    }
}

fn expr_to_target(expr: &Expr) -> Option<Target> {
    match expr {
        Expr::Var(name) => Some(Target::Var(name.clone())),
        Expr::Member { object, property } => Some(Target::Member(object.clone(), property.clone())),
        Expr::Index { object, index } => Some(Target::Index(object.clone(), index.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_var_and_function() {
        let program = parse_program("var x = 1; function f(a, b) { return a + b; }").unwrap();
        assert_eq!(program.body.len(), 2);
        assert!(matches!(&program.body[0], Stmt::VarDecl { name, .. } if name == "x"));
        assert!(
            matches!(&program.body[1], Stmt::FunctionDecl { name, params, .. }
                if name == "f" && params == &["a", "b"])
        );
    }

    #[test]
    fn precedence_mul_over_add() {
        let program = parse_program("var y = 1 + 2 * 3;").unwrap();
        let Stmt::VarDecl {
            init: Some(init), ..
        } = &program.body[0]
        else {
            panic!("expected var decl");
        };
        let Expr::Binary {
            op: BinaryOp::Add,
            rhs,
            ..
        } = init
        else {
            panic!("expected top-level add, got {init:?}");
        };
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_if_else_chain() {
        let src = "if (a) { f(); } else if (b) { g(); } else { h(); }";
        let program = parse_program(src).unwrap();
        let Stmt::If { else_branch, .. } = &program.body[0] else {
            panic!("expected if");
        };
        assert!(matches!(&else_branch[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_for_loop() {
        let src = "for (var i = 0; i < 10; i = i + 1) { f(i); }";
        let program = parse_program(src).unwrap();
        let Stmt::For {
            init, cond, update, ..
        } = &program.body[0]
        else {
            panic!("expected for");
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(update.is_some());
    }

    #[test]
    fn parses_for_with_increment_operator() {
        assert!(parse_program("for (var i = 0; i < 3; i++) { f(); }").is_ok());
    }

    #[test]
    fn compound_assignment_desugars() {
        let program = parse_program("x += 2;").unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = &program.body[0] else {
            panic!("expected assignment");
        };
        assert!(matches!(
            **value,
            Expr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn parses_member_index_call_chain() {
        let program = parse_program("a.b[0](1, 2);").unwrap();
        let Stmt::Expr(Expr::Call { callee, args, .. }) = &program.body[0] else {
            panic!("expected call");
        };
        assert_eq!(args.len(), 2);
        assert!(matches!(**callee, Expr::Index { .. }));
    }

    #[test]
    fn parses_function_expression_argument() {
        let src = "requestAnimationFrame(function(ts) { step(ts); });";
        let program = parse_program(src).unwrap();
        let Stmt::Expr(Expr::Call { args, .. }) = &program.body[0] else {
            panic!("expected call");
        };
        assert!(matches!(&args[0], Expr::Function { params, .. } if params == &["ts"]));
    }

    #[test]
    fn parses_object_and_array_literals() {
        let program = parse_program("var o = { a: 1, 'b c': [1, 2, 3] };").unwrap();
        let Stmt::VarDecl {
            init: Some(Expr::Object(entries)),
            ..
        } = &program.body[0]
        else {
            panic!("expected object literal");
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].0, "b c");
    }

    #[test]
    fn parses_ternary() {
        let program = parse_program("var x = a ? 1 : 2;").unwrap();
        let Stmt::VarDecl {
            init: Some(init), ..
        } = &program.body[0]
        else {
            panic!()
        };
        assert!(matches!(init, Expr::Conditional { .. }));
    }

    #[test]
    fn error_on_bad_assignment_target() {
        let err = parse_program("1 = 2;").unwrap_err();
        assert!(err.to_string().contains("assignment target"));
    }

    #[test]
    fn error_on_missing_semicolon() {
        assert!(parse_program("var x = 1").is_err());
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("var x = 1;\nvar y = ;").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unterminated_block_errors() {
        assert!(parse_program("function f() { var x = 1;").is_err());
    }

    #[test]
    fn logical_operators_lowest_precedence() {
        let program = parse_program("var x = a + 1 > 2 && b < 3;").unwrap();
        let Stmt::VarDecl {
            init: Some(Expr::Binary { op, .. }),
            ..
        } = &program.body[0]
        else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::And);
    }
}
