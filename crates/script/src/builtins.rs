//! Built-in operations shared by the tree-walking interpreter and the
//! bytecode VM: the `Math` namespace, array/string methods, member and
//! index access, and binary-operator semantics.

use crate::ast::BinaryOp;
use crate::interp::ScriptError;
use crate::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

/// Deterministic xorshift for `Math.random()`, shared by both backends
/// so simulations are reproducible regardless of backend.
pub(crate) fn next_random(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// Dispatches a `Math.<name>(args)` call.
pub(crate) fn math_call(
    rng_state: &mut u64,
    name: &str,
    args: &[Value],
) -> Result<Value, ScriptError> {
    let arg = |i: usize| -> Result<f64, ScriptError> {
        args.get(i)
            .and_then(Value::as_number)
            .ok_or_else(|| ScriptError::new(format!("Math.{name}: expected number")))
    };
    let result = match name {
        "floor" => arg(0)?.floor(),
        "ceil" => arg(0)?.ceil(),
        "round" => arg(0)?.round(),
        "abs" => arg(0)?.abs(),
        "sqrt" => arg(0)?.sqrt(),
        "pow" => arg(0)?.powf(arg(1)?),
        "min" => arg(0)?.min(arg(1)?),
        "max" => arg(0)?.max(arg(1)?),
        "sin" => arg(0)?.sin(),
        "cos" => arg(0)?.cos(),
        "random" => next_random(rng_state),
        _ => return Err(ScriptError::new(format!("unknown Math function `{name}`"))),
    };
    Ok(Value::Number(result))
}

/// Dispatches a built-in array method.
pub(crate) fn array_method(
    items: &Rc<RefCell<Vec<Value>>>,
    name: &str,
    args: &[Value],
) -> Result<Value, ScriptError> {
    match name {
        "push" => {
            let mut items = items.borrow_mut();
            for arg in args {
                items.push(arg.clone());
            }
            Ok(Value::Number(items.len() as f64))
        }
        "pop" => Ok(items.borrow_mut().pop().unwrap_or(Value::Null)),
        "indexOf" => {
            let needle = args.first().cloned().unwrap_or(Value::Null);
            let idx = items
                .borrow()
                .iter()
                .position(|v| v.strict_eq(&needle))
                .map_or(-1.0, |i| i as f64);
            Ok(Value::Number(idx))
        }
        "join" => {
            let sep = args
                .first()
                .and_then(Value::as_str)
                .unwrap_or(",")
                .to_string();
            let joined = items
                .borrow()
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join(&sep);
            Ok(Value::str(joined))
        }
        _ => Err(ScriptError::new(format!("array has no method `{name}`"))),
    }
}

/// Dispatches a built-in string method.
pub(crate) fn string_method(s: &Rc<str>, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
    match name {
        "charCodeAt" => {
            let idx = args.first().and_then(Value::as_number).unwrap_or(0.0) as usize;
            Ok(s.chars()
                .nth(idx)
                .map_or(Value::Null, |c| Value::Number(c as u32 as f64)))
        }
        "indexOf" => {
            let needle = args.first().and_then(Value::as_str).unwrap_or("");
            Ok(Value::Number(s.find(needle).map_or(-1.0, |i| i as f64)))
        }
        "substring" => {
            let len = s.chars().count();
            let start = (args.first().and_then(Value::as_number).unwrap_or(0.0) as usize).min(len);
            let end = (args.get(1).and_then(Value::as_number).unwrap_or(len as f64) as usize)
                .clamp(start, len);
            let sub: String = s.chars().skip(start).take(end - start).collect();
            Ok(Value::str(sub))
        }
        "toUpperCase" => Ok(Value::str(s.to_uppercase())),
        "toLowerCase" => Ok(Value::str(s.to_lowercase())),
        _ => Err(ScriptError::new(format!("string has no method `{name}`"))),
    }
}

/// Reads `obj.property` for the non-function cases.
pub(crate) fn get_member(obj: &Value, property: &str) -> Result<Value, ScriptError> {
    match obj {
        Value::Array(items) => match property {
            "length" => Ok(Value::Number(items.borrow().len() as f64)),
            _ => Err(ScriptError::new(format!(
                "array has no property `{property}`"
            ))),
        },
        Value::Str(s) => match property {
            "length" => Ok(Value::Number(s.chars().count() as f64)),
            _ => Err(ScriptError::new(format!(
                "string has no property `{property}`"
            ))),
        },
        Value::Object(map) => Ok(map.borrow().get(property).cloned().unwrap_or(Value::Null)),
        other => Err(ScriptError::new(format!(
            "{} has no property `{property}`",
            other.type_name()
        ))),
    }
}

/// Reads `obj[index]`.
pub(crate) fn get_index(obj: &Value, index: &Value) -> Result<Value, ScriptError> {
    match (obj, index) {
        (Value::Array(items), Value::Number(n)) => {
            let items = items.borrow();
            Ok(items.get(*n as usize).cloned().unwrap_or(Value::Null))
        }
        (Value::Object(map), Value::Str(key)) => {
            Ok(map.borrow().get(&**key).cloned().unwrap_or(Value::Null))
        }
        (Value::Str(s), Value::Number(n)) => Ok(s
            .chars()
            .nth(*n as usize)
            .map_or(Value::Null, |c| Value::str(c.to_string()))),
        _ => Err(ScriptError::new(format!(
            "cannot index {} with {}",
            obj.type_name(),
            index.type_name()
        ))),
    }
}

/// Writes `obj[index] = value`.
pub(crate) fn set_index(obj: &Value, index: &Value, value: Value) -> Result<(), ScriptError> {
    match (obj, index) {
        (Value::Array(items), Value::Number(n)) => {
            let mut items = items.borrow_mut();
            let i = *n as usize;
            if i >= items.len() {
                items.resize(i + 1, Value::Null);
            }
            items[i] = value;
            Ok(())
        }
        (Value::Object(map), Value::Str(key)) => {
            map.borrow_mut().insert(key.to_string(), value);
            Ok(())
        }
        _ => Err(ScriptError::new(format!(
            "cannot index-assign {} with {}",
            obj.type_name(),
            index.type_name()
        ))),
    }
}

/// Writes `obj.property = value`.
pub(crate) fn set_member(obj: &Value, property: &str, value: Value) -> Result<(), ScriptError> {
    match obj {
        Value::Object(map) => {
            map.borrow_mut().insert(property.to_string(), value);
            Ok(())
        }
        other => Err(ScriptError::new(format!(
            "cannot set property `{property}` on {}",
            other.type_name()
        ))),
    }
}

/// Evaluates a non-short-circuit binary operator on two values, with the
/// exact semantics both backends share.
pub(crate) fn binary_op(op: BinaryOp, l: &Value, r: &Value) -> Result<Value, ScriptError> {
    let numeric = |op: BinaryOp| -> Result<f64, ScriptError> {
        match (l.as_number(), r.as_number()) {
            (Some(a), Some(b)) => Ok(match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => a / b,
                BinaryOp::Rem => a % b,
                _ => unreachable!("non-arithmetic op"),
            }),
            _ => Err(ScriptError::new(format!(
                "arithmetic on {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        }
    };
    match op {
        BinaryOp::Add => {
            if matches!(l, Value::Str(_)) || matches!(r, Value::Str(_)) {
                Ok(Value::str(format!("{l}{r}")))
            } else {
                Ok(Value::Number(numeric(op)?))
            }
        }
        BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => {
            Ok(Value::Number(numeric(op)?))
        }
        BinaryOp::Eq => Ok(Value::Bool(l.strict_eq(r))),
        BinaryOp::Ne => Ok(Value::Bool(!l.strict_eq(r))),
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            let ordering = match (l, r) {
                (Value::Number(a), Value::Number(b)) => a.partial_cmp(b),
                (Value::Str(a), Value::Str(b)) => a.partial_cmp(b),
                _ => {
                    return Err(ScriptError::new(format!(
                        "cannot compare {} with {}",
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            Ok(Value::Bool(compare(op, ordering)))
        }
        BinaryOp::And | BinaryOp::Or => {
            // The compiler lowers `&&`/`||` to jump sequences, so the only
            // way to get here is hand-crafted (hostile) bytecode — a typed
            // error, not a panic, keeps the VM total on such input.
            Err(ScriptError::new(format!(
                "operator `{op}` is short-circuit and has no direct bytecode form"
            )))
        }
    }
}

pub(crate) fn compare(op: BinaryOp, ordering: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, ordering),
        (BinaryOp::Lt, Some(Less))
            | (BinaryOp::Le, Some(Less | Equal))
            | (BinaryOp::Gt, Some(Greater))
            | (BinaryOp::Ge, Some(Greater | Equal))
    )
}
