//! # greenweb-script
//!
//! A small JavaScript-like scripting language used for event callbacks in
//! the GreenWeb browser simulator.
//!
//! The paper's workloads are Web applications whose event handlers are
//! JavaScript. GreenWeb only observes handlers through (a) the CPU work
//! they perform and (b) the browser facilities they invoke —
//! `requestAnimationFrame`, timers, style writes that arm CSS transitions,
//! and DOM mutations that set the dirty bit. This crate provides a real
//! interpreted language with exactly those observables so AUTOGREEN has
//! genuine programs to instrument and the engine has genuine callbacks to
//! schedule.
//!
//! The language supports: `var`/`let` declarations, functions and lexical
//! closures, `if`/`else`, `while`, `for`, `return`/`break`/`continue`,
//! numbers, strings, booleans, `null`, arrays, objects, the usual
//! operators, and calls into a pluggable [`Host`].
//!
//! ```
//! use greenweb_script::{parse_program, Interpreter, NoHost, Value};
//!
//! let program = parse_program(
//!     "function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
//!      var answer = fib(10);",
//! ).unwrap();
//! let mut interp = Interpreter::new();
//! interp.run(&program, &mut NoHost).unwrap();
//! assert_eq!(interp.global("answer"), Some(Value::Number(55.0)));
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod atom;
pub(crate) mod builtins;
pub mod compiler;
pub mod fuel;
pub mod handler;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod stats;
pub mod value;
pub mod vm;

pub use ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};
pub use atom::name_atom;
pub use compiler::{compile, compile_with, CompileError, CompileOptions, CompiledProgram};
pub use fuel::{Fuel, DEFAULT_OP_LIMIT};
pub use handler::{CompiledHandler, HandlerCache};
pub use interp::{Host, Interpreter, NoHost, ScriptError};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse_program, ParseError};
pub use stats::ScriptStats;
pub use value::Value;
pub use vm::Vm;
