//! The shared handler-compilation cache: one compiled artifact per
//! callback body, consumed by the engine (execution), GreenLint's cost
//! and effect passes (static analysis), and the attribution profiler.
//!
//! Each registered closure body is compiled exactly once no matter how
//! many `(node, event)` registrations share the callback value and no
//! matter how many consumers look it up — the engine and the analyzers
//! hand the *same* cache around, so what the analyzer certifies is
//! byte-for-byte what the engine executes. On the VM path callbacks are
//! already `VmFunction`s holding their prototype table, and "compiling"
//! is a zero-copy `Arc` alias; only tree-walker `Function` closures (the
//! oracle path, or hand-constructed values) need an actual AST
//! compilation, which the cache counts as a *recompile* so the script
//! bench can assert the compile-twice debt is gone.

use crate::compiler::{compile, Proto};
use crate::value::Value;
use crate::Program;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// A handler body compiled once and shared by every consumer.
pub struct CompiledHandler {
    /// The prototype table of the compiled body.
    pub protos: Arc<Vec<Proto>>,
    /// Entry prototype index.
    pub main: usize,
    /// Parameter names of the entry function. Compiling a bare closure
    /// body loses them, so they ride along here (the effect pass binds
    /// the first one to the dispatched event).
    pub params: Vec<String>,
}

/// Cache key: `(allocation pointer, proto index)` of a callback's
/// shared body — tree-walking closures key their statement list (with
/// a sentinel index), VM closures their prototype table.
type HandlerKey = (usize, usize);

/// Per-app handler compilation cache. See the module docs.
#[derive(Default)]
pub struct HandlerCache {
    compiled: RefCell<HashMap<HandlerKey, Option<Rc<CompiledHandler>>>>,
    recompiles: Cell<u64>,
}

impl HandlerCache {
    /// Compiles (or fetches) the handler behind a registered callback
    /// value. `None` when the value is not a function or its body fails
    /// to compile.
    pub fn compile_callback(&self, callback: &Value) -> Option<Rc<CompiledHandler>> {
        let key = match callback {
            Value::Function(closure) => (Rc::as_ptr(&closure.body) as usize, usize::MAX),
            Value::VmFunction(vm) => (Arc::as_ptr(&vm.protos) as *const () as usize, vm.proto),
            _ => return None,
        };
        if let Some(hit) = self.compiled.borrow().get(&key) {
            return hit.clone();
        }
        let handler = match callback {
            Value::Function(closure) => {
                // A tree-walker closure has no bytecode: recompile its
                // body from the AST. This is the compile-twice debt the
                // VM path eliminates — counted so the bench can prove it.
                self.recompiles.set(self.recompiles.get() + 1);
                compile(&Program {
                    body: closure.body.as_ref().clone(),
                })
                .ok()
                .map(|c| {
                    Rc::new(CompiledHandler {
                        protos: c.protos,
                        main: c.main,
                        params: closure.params.clone(),
                    })
                })
            }
            Value::VmFunction(vm) => Some(Rc::new(CompiledHandler {
                protos: Arc::clone(&vm.protos),
                main: vm.proto,
                params: vm
                    .protos
                    .get(vm.proto)
                    .map(|p| p.params.clone())
                    .unwrap_or_default(),
            })),
            _ => None,
        };
        self.compiled.borrow_mut().insert(key, handler.clone());
        handler
    }

    /// Distinct handler bodies entered in the cache so far.
    pub fn handlers(&self) -> u64 {
        self.compiled.borrow().len() as u64
    }

    /// AST recompilations performed (tree-walker closures only; zero
    /// when every callback arrived as compiled bytecode).
    pub fn recompiles(&self) -> u64 {
        self.recompiles.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::NoHost;
    use crate::vm::Vm;
    use crate::Interpreter;

    #[test]
    fn vm_callbacks_alias_their_bytecode_zero_copy() {
        let mut vm = Vm::new();
        vm.run_source("var f = function(e) { return 1; };", &mut NoHost)
            .unwrap();
        let f = vm.global("f").unwrap();
        let cache = HandlerCache::default();
        let h1 = cache.compile_callback(&f).unwrap();
        let h2 = cache.compile_callback(&f).unwrap();
        assert!(Rc::ptr_eq(&h1, &h2), "same callback, same handler");
        assert_eq!(cache.recompiles(), 0, "no AST recompile on the VM path");
        assert_eq!(cache.handlers(), 1);
        if let Value::VmFunction(vmf) = &f {
            assert!(
                Arc::ptr_eq(&h1.protos, &vmf.protos),
                "the analyzed artifact is the executed artifact"
            );
            assert_eq!(h1.params, vec!["e".to_string()]);
        } else {
            panic!("expected a VmFunction");
        }
    }

    #[test]
    fn tree_walker_callbacks_are_recompiled_once() {
        let mut interp = Interpreter::new();
        interp
            .run(
                &crate::parse_program("var f = function(x) { return x * 2; };").unwrap(),
                &mut NoHost,
            )
            .unwrap();
        let f = interp.global("f").unwrap();
        let cache = HandlerCache::default();
        let h1 = cache.compile_callback(&f).unwrap();
        let h2 = cache.compile_callback(&f).unwrap();
        assert!(Rc::ptr_eq(&h1, &h2));
        assert_eq!(cache.recompiles(), 1, "one recompile, then cached");
        assert_eq!(h1.params, vec!["x".to_string()]);
    }

    #[test]
    fn non_functions_are_not_handlers() {
        let cache = HandlerCache::default();
        assert!(cache.compile_callback(&Value::Number(1.0)).is_none());
        assert_eq!(cache.handlers(), 0);
    }
}
